//! Epoch-stamped root-directory snapshots: wait-free MVCC readers that
//! never touch the commit pipeline.
//!
//! Every committed batch publishes an immutable [`DirSnapshot`] — the
//! root directory's `(kind, root)` entries plus a monotone epoch — with
//! one atomic pointer swing, piggybacked on the directory swing the
//! batch already paid for. A reader calls
//! [`crate::SharedModHeap::snapshot`] and receives a [`SnapshotView`]:
//! a pinned, consistent multi-root image it can traverse with **zero
//! coordination** — no staging lanes, no handoff-queue pushes, no
//! fences, no group lock, not even the commit lock. MOD's versions are
//! immutable once published, so the only thing a reader ever needed
//! protection from is *reclamation* of chains its snapshot can still
//! reach; that is handled by epoch-based deferral
//! ([`mod_alloc::EpochRegistry`]): a batch's superseded chains move to
//! limbo stamped with the epoch of the last snapshot that can reach
//! them, and are freed only once every reader pinned at that epoch (or
//! older) has dropped — and, independently, once a fence has covered
//! the swing that superseded them (the crash-safety gate inherited from
//! the single-owner deferral queue).
//!
//! ## Consistency guarantee
//!
//! All roots in one view come from the *same* published batch: the
//! snapshot is built under the commit lock from the just-swung
//! directory, so a view can never observe root A from batch `k` and
//! root B from batch `k+1` (no torn batches). Within a view, repeated
//! reads are stable — writers advancing the heap never change what a
//! held view returns.
//!
//! ## When to prefer `snapshot()` over the `peek_*` read paths
//!
//! The plain read-only accessors (`DurableMap::get` & co.) take the
//! global commit lock via [`crate::SharedModHeap::with`] and see the
//! latest committed state. Use a snapshot instead when reads are hot
//! (the view costs two atomic stores to pin + one load, then traversals
//! are pure memory reads that scale linearly with reader threads), or
//! when a multi-step read sequence must observe one consistent cut
//! across several roots. The trade is staleness: a view is a consistent
//! *past* — it does not see batches published after it was taken.

use crate::basic::{lookup, DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector};
use crate::codec::{frames, KeyRepr, PmKey, PmValue, PmWord};
use crate::erased::{DurableDs, ErasedDs};
use mod_alloc::{EpochRegistry, HeapRead, NvHeap};
use mod_funcds::{PmMap, PmQueue, PmStack, PmVector};

/// One published batch's immutable root-directory image.
///
/// Built by the commit stage under the commit lock and published with a
/// single atomic pointer swing; never mutated afterwards. Readers reach
/// it through [`crate::SharedModHeap::snapshot`].
#[derive(Debug)]
pub struct DirSnapshot {
    pub(crate) epoch: u64,
    pub(crate) roots: Vec<ErasedDs>,
}

impl DirSnapshot {
    /// The batch epoch this snapshot was published at (monotone; epoch 0
    /// is the pre-first-commit image).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of roots the directory held when this snapshot published.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }
}

/// A pinned, consistent, read-only view of every published root.
///
/// Obtained from [`crate::SharedModHeap::snapshot`]. Holding a view
/// pins its epoch in the reader registry, which defers reclamation of
/// any version chain the view can reach; **drop views promptly** —
/// a long-lived view holds superseded chains of every later batch in
/// limbo. The `Drop` impl unpins unconditionally (a reader that panics
/// mid-traversal releases its pin during unwind).
///
/// Accessors mirror the read-only methods of the typed wrappers
/// ([`DurableMap::get`] → [`SnapshotView::map_get`], …) and decode
/// through the same codec paths, so values round-trip identically.
///
/// # Panics
///
/// Accessors panic if the wrapper's root index is not in the snapshot
/// (the root was published after the view was taken) or records a
/// different datastructure kind — both are usage bugs, matching the
/// panics of [`crate::ModHeap::open_root`].
#[derive(Debug)]
pub struct SnapshotView<'h> {
    snap: &'h DirSnapshot,
    nv: &'h NvHeap,
    registry: &'h EpochRegistry,
    slot: usize,
}

impl<'h> SnapshotView<'h> {
    pub(crate) fn new(
        snap: &'h DirSnapshot,
        nv: &'h NvHeap,
        registry: &'h EpochRegistry,
        slot: usize,
    ) -> SnapshotView<'h> {
        SnapshotView {
            snap,
            nv,
            registry,
            slot,
        }
    }

    /// The epoch this view is pinned at (see [`DirSnapshot::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// Number of roots in this view.
    pub fn root_count(&self) -> usize {
        self.snap.roots.len()
    }

    /// Resolves directory index `index` to a typed version handle.
    fn resolve<D: DurableDs>(&self, index: usize) -> D {
        let entry = self.snap.roots.get(index).unwrap_or_else(|| {
            panic!(
                "root {index} not in snapshot (epoch {}, {} roots — published later?)",
                self.snap.epoch,
                self.snap.roots.len()
            )
        });
        assert_eq!(
            entry.kind,
            D::KIND,
            "snapshot root {index} holds a {:?}, not a {:?}",
            entry.kind,
            D::KIND
        );
        D::from_root_ptr(entry.root)
    }

    /// The peek-only read path over this view's heap image.
    fn read(&self) -> HeapRead<'_> {
        HeapRead::Peek(self.nv)
    }

    // -- map ----------------------------------------------------------

    /// [`DurableMap::get`] against this view.
    pub fn map_get<K: PmKey, V: PmValue>(&self, map: &DurableMap<K, V>, key: &K) -> Option<V> {
        lookup(
            self.resolve(map.root().index()),
            &mut self.read(),
            &key.repr(),
        )
    }

    /// [`DurableMap::contains_key`] against this view.
    pub fn map_contains_key<K: PmKey, V: PmValue>(&self, map: &DurableMap<K, V>, key: &K) -> bool {
        let cur: PmMap = self.resolve(map.root().index());
        match key.repr() {
            KeyRepr::Exact(w) => cur.peek_contains_key(self.nv, w),
            KeyRepr::Hashed { .. } => self.map_get(map, key).is_some(),
        }
    }

    /// [`DurableMap::len`] against this view (`O(n)` for hashed keys,
    /// like the wrapper).
    pub fn map_len<K: PmKey, V: PmValue>(&self, map: &DurableMap<K, V>) -> u64 {
        self.raw_map_len::<K>(map.root().index())
    }

    /// [`DurableMap::is_empty`] against this view.
    pub fn map_is_empty<K: PmKey, V: PmValue>(&self, map: &DurableMap<K, V>) -> bool {
        let cur: PmMap = self.resolve(map.root().index());
        cur.peek_is_empty(self.nv)
    }

    fn raw_map_len<K: PmKey>(&self, index: usize) -> u64 {
        let cur: PmMap = self.resolve(index);
        if !K::EXACT {
            cur.peek_to_vec(self.nv)
                .iter()
                .map(|(_, bucket)| frames(bucket).count() as u64)
                .sum()
        } else {
            cur.peek_len(self.nv)
        }
    }

    // -- set ----------------------------------------------------------

    /// [`DurableSet::contains`] against this view.
    pub fn set_contains<K: PmKey>(&self, set: &DurableSet<K>, key: &K) -> bool {
        let cur: PmMap = self.resolve(set.root().index());
        match key.repr() {
            KeyRepr::Exact(w) => cur.peek_contains_key(self.nv, w),
            KeyRepr::Hashed { .. } => lookup::<()>(cur, &mut self.read(), &key.repr()).is_some(),
        }
    }

    /// [`DurableSet::len`] against this view.
    pub fn set_len<K: PmKey>(&self, set: &DurableSet<K>) -> u64 {
        self.raw_map_len::<K>(set.root().index())
    }

    /// [`DurableSet::is_empty`] against this view.
    pub fn set_is_empty<K: PmKey>(&self, set: &DurableSet<K>) -> bool {
        let cur: PmMap = self.resolve(set.root().index());
        cur.peek_is_empty(self.nv)
    }

    // -- vector -------------------------------------------------------

    /// [`DurableVector::get`] against this view.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds in the snapshotted version.
    pub fn vector_get<V: PmWord>(&self, vec: &DurableVector<V>, index: u64) -> V {
        let cur: PmVector = self.resolve(vec.root().index());
        V::from_word(cur.peek_get(self.nv, index))
    }

    /// [`DurableVector::len`] against this view.
    pub fn vector_len<V: PmWord>(&self, vec: &DurableVector<V>) -> u64 {
        let cur: PmVector = self.resolve(vec.root().index());
        cur.peek_len(self.nv)
    }

    /// [`DurableVector::is_empty`] against this view.
    pub fn vector_is_empty<V: PmWord>(&self, vec: &DurableVector<V>) -> bool {
        self.vector_len(vec) == 0
    }

    /// [`DurableVector::to_vec`] against this view.
    pub fn vector_to_vec<V: PmWord>(&self, vec: &DurableVector<V>) -> Vec<V> {
        let cur: PmVector = self.resolve(vec.root().index());
        cur.peek_to_vec(self.nv)
            .into_iter()
            .map(V::from_word)
            .collect()
    }

    // -- stack --------------------------------------------------------

    /// [`DurableStack::peek`] against this view.
    pub fn stack_top<V: PmWord>(&self, stack: &DurableStack<V>) -> Option<V> {
        let cur: PmStack = self.resolve(stack.root().index());
        cur.peek_top(self.nv).map(V::from_word)
    }

    /// [`DurableStack::len`] against this view.
    pub fn stack_len<V: PmWord>(&self, stack: &DurableStack<V>) -> u64 {
        let cur: PmStack = self.resolve(stack.root().index());
        cur.peek_len(self.nv)
    }

    // -- queue --------------------------------------------------------

    /// [`DurableQueue::peek`] against this view.
    pub fn queue_front<V: PmWord>(&self, queue: &DurableQueue<V>) -> Option<V> {
        let cur: PmQueue = self.resolve(queue.root().index());
        cur.peek_front(self.nv).map(V::from_word)
    }

    /// [`DurableQueue::len`] against this view.
    pub fn queue_len<V: PmWord>(&self, queue: &DurableQueue<V>) -> u64 {
        let cur: PmQueue = self.resolve(queue.root().index());
        cur.peek_len(self.nv)
    }

    /// Whether the snapshotted queue is empty.
    pub fn queue_is_empty<V: PmWord>(&self, queue: &DurableQueue<V>) -> bool {
        self.queue_len(queue) == 0
    }
}

impl Drop for SnapshotView<'_> {
    fn drop(&mut self) {
        // Unconditional (runs during unwind too): a reader panicking
        // mid-traversal must not leave its epoch pinned forever, or
        // reclamation of every later batch stalls.
        self.registry.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use crate::basic::{DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector};
    use crate::sched::{SeededRoundRobin, Turn};
    use crate::shared::SharedModHeap;
    use mod_pmem::{Pmem, PmemConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn shared(workers: usize) -> SharedModHeap {
        SharedModHeap::create(Pmem::new(PmemConfig::testing()), workers)
    }

    #[test]
    fn view_reads_every_root_kind_of_the_published_image() {
        let sh = shared(2);
        let map: DurableMap<String, u64> = sh.setup(DurableMap::create);
        let set: DurableSet<u64> = sh.setup(DurableSet::create);
        let vec: DurableVector<u64> = sh.setup(DurableVector::create);
        let stack: DurableStack<u64> = sh.setup(DurableStack::create);
        let queue: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| {
            map.insert_in(tx, &"k".to_string(), &7);
            set.insert_in(tx, &3);
            vec.push_back_in(tx, &11);
        });
        sh.fase(1, |tx| {
            stack.push_in(tx, &13);
            queue.enqueue_in(tx, &17);
        });
        sh.flush();
        let v = sh.snapshot();
        assert_eq!(v.root_count(), 5);
        assert_eq!(v.map_get(&map, &"k".to_string()), Some(7));
        assert!(v.map_contains_key(&map, &"k".to_string()));
        assert_eq!(v.map_len(&map), 1);
        assert!(!v.map_is_empty(&map));
        assert!(v.set_contains(&set, &3));
        assert!(!v.set_contains(&set, &4));
        assert_eq!(v.set_len(&set), 1);
        assert_eq!(v.vector_get(&vec, 0), 11);
        assert_eq!(v.vector_len(&vec), 1);
        assert_eq!(v.vector_to_vec(&vec), vec![11]);
        assert_eq!(v.stack_top(&stack), Some(13));
        assert_eq!(v.stack_len(&stack), 1);
        assert_eq!(v.queue_front(&queue), Some(17));
        assert_eq!(v.queue_len(&queue), 1);
        assert!(!v.queue_is_empty(&queue));
    }

    #[test]
    fn view_is_stable_while_writers_advance() {
        let sh = shared(1);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.fase(0, |tx| map.insert_in(tx, &1, &100));
        let v = sh.snapshot();
        let pinned_epoch = v.epoch();
        assert_eq!(v.map_get(&map, &1), Some(100));
        // Writers race ahead; the held view must not move.
        for i in 0..10u64 {
            sh.fase(0, |tx| map.insert_in(tx, &1, &(200 + i)));
        }
        sh.flush();
        assert_eq!(v.map_get(&map, &1), Some(100), "held view moved");
        assert!(
            sh.snapshot_epoch() > pinned_epoch,
            "published epoch should have advanced past the held view"
        );
        let fresh = sh.snapshot();
        assert_eq!(fresh.map_get(&map, &1), Some(209));
        assert!(fresh.epoch() > v.epoch(), "old view lags the fresh one");
    }

    #[test]
    fn snapshot_traversals_touch_no_fences_and_no_handoff_queue() {
        let readers = if cfg!(miri) { 2 } else { 8 };
        let reads = if cfg!(miri) { 5 } else { 200 };
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let queue: DurableQueue<u64> = sh.setup(DurableQueue::create);
        for i in 0..8u64 {
            sh.fase((i % 2) as usize, |tx| {
                map.insert_in(tx, &i, &(i * i));
                queue.enqueue_in(tx, &i);
            });
        }
        sh.flush();
        // Baseline across every timeline (workers + commit stage) and
        // the pipeline counters; snapshot reads must perturb *nothing*:
        // zero fences, zero staged FASEs (= zero handoff-queue pushes),
        // zero PM charges of any kind.
        let pm_before = sh.lane_stats();
        let pipe_before = sh.stats();
        std::thread::scope(|s| {
            for _ in 0..readers {
                s.spawn(|| {
                    for _ in 0..reads {
                        let v = sh.snapshot();
                        for i in 0..8u64 {
                            assert_eq!(v.map_get(&map, &i), Some(i * i));
                        }
                        assert_eq!(v.queue_front(&queue), Some(0));
                        assert_eq!(v.queue_len(&queue), 8);
                    }
                });
            }
        });
        let pm_after = sh.lane_stats();
        let pipe_after = sh.stats();
        assert_eq!(pm_after.fences, pm_before.fences, "readers paid a fence");
        assert_eq!(pm_after, pm_before, "readers charged the PM timelines");
        assert_eq!(
            pipe_after.fases, pipe_before.fases,
            "readers pushed onto the handoff queue"
        );
        assert_eq!(pipe_after, pipe_before, "readers perturbed the pipeline");
        assert_eq!(sh.live_reader_pins(), 0, "all views unpinned");
    }

    /// Seeded-turnstile race injection: three writer threads each commit
    /// FASEs that update the map AND the queue together, while a reader
    /// thread snapshots between arbitrary (seed-chosen) steps. Every
    /// batch keeps `map len == queue len`, so any view that mixed roots
    /// from two batches would be caught immediately.
    #[test]
    fn snapshot_never_observes_a_torn_batch_under_turnstile() {
        let seeds: &[u64] = if cfg!(miri) { &[7] } else { &[1, 7, 42, 1337] };
        let writer_ops = if cfg!(miri) { 4 } else { 16 };
        let reader_ops = if cfg!(miri) { 6 } else { 48 };
        for &seed in seeds {
            let sh = shared(3);
            let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
            let queue: DurableQueue<u64> = sh.setup(DurableQueue::create);
            let sched = Arc::new(SeededRoundRobin::new(seed, 4));
            let next = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                for w in 0..3usize {
                    let sh = sh.clone();
                    let sched = Arc::clone(&sched);
                    let next = Arc::clone(&next);
                    s.spawn(move || {
                        for _ in 0..writer_ops {
                            if sched.step(w) == Turn::Halt {
                                break;
                            }
                            let k = next.fetch_add(1, Ordering::SeqCst);
                            sh.fase(w, |tx| {
                                map.insert_in(tx, &k, &k);
                                queue.enqueue_in(tx, &k);
                            });
                        }
                        sh.deregister(w);
                        sched.finish(w);
                    });
                }
                let sh_r = sh.clone();
                let sched_r = Arc::clone(&sched);
                s.spawn(move || {
                    for _ in 0..reader_ops {
                        if sched_r.step(3) == Turn::Halt {
                            break;
                        }
                        let v = sh_r.snapshot();
                        let m = v.map_len(&map);
                        let q = v.queue_len(&queue);
                        assert_eq!(
                            m,
                            q,
                            "torn batch at epoch {}: map has {m}, queue has {q} (seed {seed})",
                            v.epoch()
                        );
                        // Every enqueued element must also be in the map.
                        if let Some(front) = v.queue_front(&queue) {
                            assert_eq!(v.map_get(&map, &front), Some(front));
                        }
                    }
                    sched_r.finish(3);
                });
            });
        }
    }

    /// Reclamation property: while a pinned view can reach a version
    /// chain, the chain is never freed — heavy same-key churn plus
    /// explicit quiesce (which reclaims everything unpinned) must leave
    /// the view's image byte-identical; unpinning then releases the
    /// held chains at the next fence.
    #[test]
    fn pinned_view_blocks_reclamation_until_dropped() {
        let churn = if cfg!(miri) { 8 } else { 64 };
        let sh = shared(1);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let queue: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| {
            map.insert_in(tx, &1, &100);
            queue.enqueue_in(tx, &100);
        });
        let v = sh.snapshot();
        assert_eq!(v.map_get(&map, &1), Some(100));
        // Churn: overwrite the key and roll the queue over and over, so
        // a buggy reclaimer would free and *reuse* the view's blocks.
        for i in 0..churn {
            sh.fase(0, |tx| {
                map.insert_in(tx, &1, &(1000 + i));
                queue.enqueue_in(tx, &(1000 + i));
                queue.dequeue_in(tx);
            });
        }
        sh.quiesce();
        assert_eq!(v.map_get(&map, &1), Some(100), "pinned chain was recycled");
        assert_eq!(v.queue_front(&queue), Some(100));
        assert_eq!(v.queue_len(&queue), 1);
        let frees_pinned = sh.with(|h| h.nv().stats().frees);
        drop(v);
        assert_eq!(sh.live_reader_pins(), 0);
        sh.quiesce();
        let frees_unpinned = sh.with(|h| h.nv().stats().frees);
        assert!(
            frees_unpinned > frees_pinned,
            "unpinning must release the held chains ({frees_pinned} -> {frees_unpinned})"
        );
    }

    /// A view pinned across a whole generation of structural rebuilds
    /// (stack grow/shrink cycles plus queue roll-over — the
    /// compaction-like paths) keeps reading its original image.
    #[test]
    fn view_survives_structural_churn_across_batches() {
        let rounds = if cfg!(miri) { 4u64 } else { 24 };
        let sh = shared(1);
        let stack: DurableStack<u64> = sh.setup(DurableStack::create);
        let queue: DurableQueue<u64> = sh.setup(DurableQueue::create);
        for i in 0..4u64 {
            sh.fase(0, |tx| {
                stack.push_in(tx, &i);
                queue.enqueue_in(tx, &i);
            });
        }
        let v = sh.snapshot();
        assert_eq!(v.stack_top(&stack), Some(3));
        assert_eq!(v.queue_front(&queue), Some(0));
        for r in 0..rounds {
            // Grow then shrink past the pinned image's top, and roll the
            // queue one full slot — every round rebuilds the spines the
            // view is still traversing.
            sh.fase(0, |tx| {
                stack.push_in(tx, &(100 + r));
                stack.push_in(tx, &(200 + r));
            });
            sh.fase(0, |tx| {
                stack.pop_in(tx);
                stack.pop_in(tx);
                stack.pop_in(tx);
                queue.enqueue_in(tx, &(300 + r));
                queue.dequeue_in(tx);
            });
        }
        sh.quiesce();
        assert_eq!(v.stack_top(&stack), Some(3), "pinned stack image moved");
        assert_eq!(v.stack_len(&stack), 4);
        assert_eq!(v.queue_front(&queue), Some(0), "pinned queue image moved");
        assert_eq!(v.queue_len(&queue), 4);
        drop(v);
        sh.quiesce();
    }

    /// A snapshot taken inside the commit — after the directory swing
    /// but before the new snapshot publishes — still reads the *old*
    /// batch's consistent image (the swing alone must not leak).
    #[test]
    fn snapshot_between_swing_and_publish_reads_the_old_image() {
        let sh = shared(1);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.fase(0, |tx| map.insert_in(tx, &1, &10));
        sh.flush();
        let epoch_before = sh.snapshot_epoch();
        let observed = Arc::new(std::sync::Mutex::new(Vec::new()));
        {
            let hook_sh = sh.clone();
            let observed = Arc::clone(&observed);
            sh.set_mid_commit_hook(move || {
                let v = hook_sh.snapshot();
                observed.lock().unwrap().push((
                    v.epoch(),
                    v.map_get(&map, &1),
                    v.map_get(&map, &2),
                ));
            });
        }
        sh.fase(0, |tx| map.insert_in(tx, &2, &20));
        sh.flush();
        let seen = observed.lock().unwrap().clone();
        // The hook runs on every commit-stage pass (no-op passes too);
        // only the first firing sits in the swing-to-publish window of
        // the insert(2) batch.
        assert_eq!(
            seen.first().copied(),
            Some((epoch_before, Some(10), None)),
            "mid-swing view must be the previous epoch's image"
        );
        assert_eq!(sh.snapshot().map_get(&map, &2), Some(20));
    }

    /// Regression: a reader that panics while holding a view must unpin
    /// during unwind, or reclamation stalls forever.
    #[test]
    fn view_drop_unpins_during_panic_unwind() {
        let sh = shared(1);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.fase(0, |tx| map.insert_in(tx, &1, &1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let v = sh.snapshot();
            assert_eq!(v.map_get(&map, &1), Some(1));
            panic!("reader died mid-traversal");
        }));
        assert!(err.is_err());
        assert_eq!(sh.live_reader_pins(), 0, "unwind leaked a pin");
        // Reclamation still proceeds afterwards.
        for i in 0..4u64 {
            sh.fase(0, |tx| map.insert_in(tx, &1, &i));
        }
        sh.quiesce();
        assert_eq!(sh.snapshot().map_get(&map, &1), Some(3));
    }

    /// `setup()` republishes: views taken after it see freshly published
    /// roots without any batch having committed.
    #[test]
    fn setup_republishes_the_snapshot() {
        let sh = shared(1);
        let e0 = sh.snapshot_epoch();
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        assert!(sh.snapshot_epoch() > e0, "setup must bump the epoch");
        let v = sh.snapshot();
        assert_eq!(v.root_count(), 1);
        assert!(v.map_is_empty(&map));
    }
}
