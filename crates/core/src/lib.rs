//! # mod-core — MOD: Minimally Ordered Durable datastructures
//!
//! The primary contribution of *"MOD: Minimally Ordered Durable
//! Datastructures for Persistent Memory"* (Haria, Hill, Swift — ASPLOS
//! 2020), reproduced in Rust over a simulated PM substrate.
//!
//! MOD makes failure-atomic, durable updates cheap by **minimizing
//! ordering points**: instead of logging and carefully ordered in-place
//! writes (PM-STM), every update is a *pure* out-of-place shadow built
//! from a functional datastructure, flushed with freely overlapping
//! `clwb`s, and published with **one `sfence` plus one atomic 8-byte
//! pointer store** (Fig 8).
//!
//! Two interfaces, as in the paper (Fig 6), both typed:
//!
//! * **Basic** ([`basic`]) — [`DurableMap<K, V>`], [`DurableSet<K>`],
//!   [`DurableVector<V>`], [`DurableStack<V>`], [`DurableQueue<V>`]:
//!   mutable-looking collections where each update is a self-contained
//!   FASE and lookups are read-only (`&ModHeap`). Keys and values are
//!   application types, bridged by the [`codec`] traits.
//! * **Composition** ([`ModHeap::fase`]) — one closure stages pure
//!   updates to any number of typed [`Root`]s; all of them publish
//!   together with exactly one ordering point.
//!
//! Recovery ([`ModHeap::open`]) is self-describing: typed roots live in a
//! persistent root directory that records each structure's [`RootKind`],
//! so reopening a pool needs no caller-supplied slot specs. It redoes any
//! interrupted legacy unrelated commit, garbage-collects mid-FASE leaks
//! by reachability, and rebuilds the volatile reference counts (§5.2–5.3).
//!
//! ## Example: one FASE over two structures
//!
//! ```
//! use mod_core::ModHeap;
//! use mod_funcds::{PmMap, PmQueue};
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
//! let m0 = PmMap::empty(heap.nv_mut());
//! let q0 = PmQueue::empty(heap.nv_mut());
//! let map = heap.publish(m0);
//! let queue = heap.publish(q0);
//!
//! // FASE: move a work item into the map, atomically w.r.t. failure —
//! // one sfence, one pointer store, however many structures.
//! heap.fase(|tx| {
//!     tx.update(queue, |nv, q| q.enqueue(nv, 42));
//!     tx.update(map, |nv, m| m.insert(nv, 42, b"payload"));
//! });
//!
//! assert_eq!(heap.current(queue).peek_front(heap.nv()), Some(42));
//! assert_eq!(
//!     heap.current(map).peek_get(heap.nv(), 42),
//!     Some(b"payload".to_vec())
//! );
//! ```
//!
//! The pre-0.2 raw-slot entry points (`publish_root`, `commit_single`,
//! `commit_siblings`, `commit_unrelated`, spec-based `recover`,
//! `root_handle`) were removed in 0.3 after one deprecation release; the
//! typed API above covers every use (see the README migration table).

#![warn(missing_docs)]

pub mod basic;
pub mod codec;
pub mod erased;
pub mod fase;
pub mod heap;
pub mod parent;
pub mod queue;
pub mod recovery;
pub mod root;
pub mod sched;
pub mod shared;
pub mod snapshot;
pub mod spine;

pub use basic::{
    DurableMap, DurableQueue, DurableRoot, DurableSet, DurableStack, DurableVector, OpenError,
    RootBuilder,
};
pub use codec::{PmKey, PmValue, PmWord};
pub use erased::{DurableDs, ErasedDs, RootKind};
pub use fase::Fase;
pub use heap::{ModHeap, ULOG_CAP};
pub use queue::HandoffQueue;
pub use root::{Root, ROOT_DIR_SLOT};
pub use sched::{SeededRoundRobin, Turn};
pub use shared::{
    CommitMode, CommitNotice, CommitTicket, EngineError, HeapPoisoned, LaneContention,
    PipelineStats, SharedModHeap,
};
pub use snapshot::{DirSnapshot, SnapshotView};
pub use spine::PersistPolicy;
