//! # mod-core — MOD: Minimally Ordered Durable datastructures
//!
//! The primary contribution of *"MOD: Minimally Ordered Durable
//! Datastructures for Persistent Memory"* (Haria, Hill, Swift — ASPLOS
//! 2020), reproduced in Rust over a simulated PM substrate.
//!
//! MOD makes failure-atomic, durable updates cheap by **minimizing
//! ordering points**: instead of logging and carefully ordered in-place
//! writes (PM-STM), every update is a *pure* out-of-place shadow built
//! from a functional datastructure, flushed with freely overlapping
//! `clwb`s, and published with **one `sfence` plus one atomic 8-byte
//! pointer store** (Fig 8).
//!
//! Two interfaces, as in the paper (Fig 6):
//!
//! * **Basic** ([`basic`]) — [`DurableMap`], [`DurableSet`],
//!   [`DurableVector`], [`DurableStack`], [`DurableQueue`]: mutable-
//!   looking structures where each update is a self-contained FASE.
//! * **Composition** ([`ModHeap`]) — pure updates on any number of
//!   structures, then [`ModHeap::commit_single`],
//!   [`ModHeap::commit_siblings`] or [`ModHeap::commit_unrelated`]
//!   to publish them failure-atomically together.
//!
//! Recovery ([`recovery::recover`]) redoes any interrupted unrelated
//! commit, garbage-collects mid-FASE leaks by reachability, and rebuilds
//! the volatile reference counts (§5.2–5.3).
//!
//! ## Example: composing updates to two structures
//!
//! ```
//! use mod_core::{ModHeap, DurableDs, recovery::{recover, RootSpec}, RootKind};
//! use mod_funcds::{PmMap, PmQueue};
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
//! let m0 = PmMap::empty(heap.nv_mut());
//! let q0 = PmQueue::empty(heap.nv_mut());
//! heap.publish_root(0, m0);
//! heap.publish_root(1, q0);
//!
//! // FASE: move a work item into the map, atomically w.r.t. failure.
//! let q1 = q0.enqueue(heap.nv_mut(), 42);
//! let m1 = m0.insert(heap.nv_mut(), 42, b"payload");
//! heap.commit_unrelated(&[
//!     (0, m0.erase(), m1.erase()),
//!     (1, q0.erase(), q1.erase()),
//! ]);
//! assert_eq!(heap.read_root(0), m1.root());
//! ```

#![warn(missing_docs)]

pub mod basic;
pub mod erased;
pub mod heap;
pub mod parent;
pub mod recovery;

pub use basic::{DurableMap, DurableQueue, DurableSet, DurableStack, DurableVector};
pub use erased::{DurableDs, ErasedDs, RootKind};
pub use heap::{ModHeap, ULOG_CAP};
pub use recovery::{recover, root_handle, try_root_handle, RootSpec};
