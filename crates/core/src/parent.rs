//! Parent objects for `CommitSiblings` (paper Fig 8c).
//!
//! When several datastructures belong to one logical entity (vacation's
//! manager holds multiple maps), they are grouped under a *parent object*:
//! a small PM block of `(kind, root)` pairs. Committing sibling updates
//! builds a new parent pointing at the new versions, flushes it, fences
//! once, and swings a single pointer at the parent — keeping the whole
//! multi-datastructure FASE at one ordering point.

use crate::erased::{ErasedDs, RootKind};
use mod_alloc::{HeapRead, NvHeap};
use mod_pmem::PmPtr;

/// Builds and flushes a parent object owning `children`. Layout:
/// `[count][(kind, root) × count][tag × count]` — the trailing tag words
/// carry per-child metadata (the root directory stores each entry's codec
/// discipline there; plain sibling parents leave them zero). Increments
/// each child root's refcount (the parent owns its children).
pub fn store_parent(nv: &mut NvHeap, children: &[ErasedDs]) -> PmPtr {
    store_parent_tagged(nv, children, &vec![0; children.len()])
}

/// [`store_parent`] with explicit per-child tag words.
///
/// # Panics
///
/// Panics if `children` is empty or `tags.len() != children.len()`.
pub fn store_parent_tagged(nv: &mut NvHeap, children: &[ErasedDs], tags: &[u64]) -> PmPtr {
    assert!(!children.is_empty(), "parent object needs children");
    assert_eq!(children.len(), tags.len(), "one tag word per child");
    let n = children.len() as u64;
    let len = 8 + 24 * n;
    let ptr = nv.alloc(len);
    nv.write_u64(ptr.addr(), n);
    for (i, c) in children.iter().enumerate() {
        let base = ptr.addr() + 8 + 16 * i as u64;
        nv.write_u64(base, c.kind.to_u64());
        nv.write_u64(base + 8, c.root.addr());
    }
    let tag_base = ptr.addr() + 8 + 16 * n;
    for (i, &t) in tags.iter().enumerate() {
        nv.write_u64(tag_base + 8 * i as u64, t);
    }
    nv.flush_block(ptr);
    for c in children {
        nv.rc_inc(c.root);
    }
    ptr
}

/// Reads the per-child tag words of a parent object (zeros for parents
/// built without explicit tags).
pub fn peek_tags_of(nv: &NvHeap, parent: PmPtr) -> Vec<u64> {
    let n = nv.peek_u64(parent.addr());
    let tag_base = parent.addr() + 8 + 16 * n;
    (0..n).map(|i| nv.peek_u64(tag_base + 8 * i)).collect()
}

/// Reads one child's tag word without materializing the whole parent.
pub fn peek_tag_of(nv: &NvHeap, parent: PmPtr, index: usize) -> u64 {
    let n = nv.peek_u64(parent.addr());
    assert!((index as u64) < n, "tag index {index} out of range ({n})");
    nv.peek_u64(parent.addr() + 8 + 16 * n + 8 * index as u64)
}

/// Reads the children of a parent object.
pub fn children_of(nv: &mut NvHeap, parent: PmPtr) -> Vec<ErasedDs> {
    children_of_r(&mut nv.into(), parent)
}

/// Reads the children of a parent object without charging the cache/time
/// model (read-only `&NvHeap` access).
pub fn peek_children_of(nv: &NvHeap, parent: PmPtr) -> Vec<ErasedDs> {
    children_of_r(&mut nv.into(), parent)
}

fn children_of_r(nv: &mut HeapRead<'_>, parent: PmPtr) -> Vec<ErasedDs> {
    let count = nv.u64(parent.addr()) as usize;
    (0..count)
        .map(|i| {
            let base = parent.addr() + 8 + 16 * i as u64;
            let kind = RootKind::from_u64(nv.u64(base));
            let root = PmPtr::from_addr(nv.u64(base + 8));
            ErasedDs { kind, root }
        })
        .collect()
}

/// Releases one reference to a parent object, cascading to its children
/// at zero.
pub fn release_parent(nv: &mut NvHeap, parent: PmPtr) {
    if nv.rc_dec(parent) > 0 {
        return;
    }
    let children = children_of(nv, parent);
    nv.free(parent);
    for c in children {
        c.release(nv);
    }
}

/// Marks a parent object and its children during recovery GC.
pub fn mark_parent(nv: &mut NvHeap, parent: PmPtr) {
    if !nv.mark_block(parent) {
        return;
    }
    for c in children_of(nv, parent) {
        c.mark(nv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erased::DurableDs;
    use mod_funcds::{PmMap, PmQueue};
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn parent_roundtrip() {
        let mut nv = heap();
        let m = PmMap::empty(&mut nv);
        let q = PmQueue::empty(&mut nv);
        let p = store_parent(&mut nv, &[m.erase(), q.erase()]);
        let kids = children_of(&mut nv, p);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].kind, RootKind::Map);
        assert_eq!(kids[0].root, m.root());
        assert_eq!(kids[1].kind, RootKind::Queue);
        assert_eq!(kids[1].root, q.root());
    }

    #[test]
    fn parent_owns_children() {
        let mut nv = heap();
        let m = PmMap::empty(&mut nv);
        let p = store_parent(&mut nv, &[m.erase()]);
        assert_eq!(nv.rc_get(m.root()), 2);
        // Dropping our handle's reference leaves the parent's.
        m.release(&mut nv);
        assert_eq!(nv.rc_get(m.root()), 1);
        release_parent(&mut nv, p);
        assert_eq!(nv.stats().live_blocks, 0);
    }

    #[test]
    #[should_panic(expected = "needs children")]
    fn empty_parent_rejected() {
        let mut nv = heap();
        store_parent(&mut nv, &[]);
    }

    #[test]
    fn tags_roundtrip_and_default_to_zero() {
        let mut nv = heap();
        let m = PmMap::empty(&mut nv);
        let q = PmQueue::empty(&mut nv);
        let untagged = store_parent(&mut nv, &[m.erase(), q.erase()]);
        assert_eq!(peek_tags_of(&nv, untagged), vec![0, 0]);
        let tagged = store_parent_tagged(&mut nv, &[m.erase(), q.erase()], &[7, 0x0101]);
        assert_eq!(peek_tags_of(&nv, tagged), vec![7, 0x0101]);
        assert_eq!(peek_tag_of(&nv, tagged, 0), 7);
        assert_eq!(peek_tag_of(&nv, tagged, 1), 0x0101);
        // Tags don't disturb the child entries.
        let kids = children_of(&mut nv, tagged);
        assert_eq!(kids[0].root, m.root());
        assert_eq!(kids[1].root, q.root());
    }

    #[test]
    #[should_panic(expected = "one tag word per child")]
    fn tag_arity_checked() {
        let mut nv = heap();
        let m = PmMap::empty(&mut nv);
        store_parent_tagged(&mut nv, &[m.erase()], &[1, 2]);
    }
}
