//! The MOD heap: commit machinery (Fig 8) and deferred reclamation.
//!
//! A [`ModHeap`] wraps the persistent allocator and carries the commit
//! machinery behind [`ModHeap::fase`]: after pure updates have produced
//! shadows (all flushed with unordered `clwb`s, zero fences — their WPQ
//! drains running in the background from issue time), the commit fences
//! once (paying only the *residual* drain) and publishes everything with
//! one atomic pointer store: exactly **one ordering point per FASE**,
//! the paper's headline property. The pre-0.2 raw-slot `publish_root` /
//! `commit_*` shims were removed in 0.3 — `ModHeap::fase` with typed
//! [`crate::Root`] handles covers every Fig 8 case (and beats Fig 8d's
//! three-fence redo log with a single fence via the root directory).
//!
//! ## Reclamation is deferred by one commit
//!
//! Fig 8 reclaims the old version immediately after the (unfenced) pointer
//! store. Freed blocks could then be reused — and overwritten — by the
//! next FASE *before* the pointer store is durable; an adversarial crash
//! would leave the slot pointing at the old version with its nodes
//! clobbered. We therefore queue the superseded version and release it at
//! the *next* commit's fence, when the pointer store is provably durable.
//! This changes no flush/fence counts (reclamation is volatile); it makes
//! the recovery argument of §5.2 hold under any crash timing, which our
//! adversarial crash tests exercise.

use crate::erased::ErasedDs;
use crate::root::ROOT_DIR_SLOT;
use mod_alloc::NvHeap;
use mod_pmem::{PmPtr, Pmem, PmemConfig};
use std::io;
use std::path::Path;

/// Byte offset of the unrelated-commit log's state word.
pub(crate) const ULOG_STATE: u64 = 576;
/// Byte offset of the log's entry count.
pub(crate) const ULOG_COUNT: u64 = 584;
/// Byte offset of the first `(slot, root)` entry.
pub(crate) const ULOG_ENTRIES: u64 = 592;
/// Maximum entries in one unrelated commit.
pub const ULOG_CAP: usize = 24;
/// Log state: committed, must redo on recovery.
pub(crate) const ULOG_COMMITTED: u64 = 1;

/// The MOD heap: allocator + commit protocols + deferred reclamation.
#[derive(Debug)]
pub struct ModHeap {
    nv: NvHeap,
    /// Versions superseded by a committed pointer store that is not yet
    /// known durable; released after the next fence.
    pending: Vec<ErasedDs>,
    /// Wall-clock nanoseconds [`ModHeap::open`] spent replaying hybrid
    /// spines into volatile indices (0 when the pool had no hybrid
    /// roots). Host time, not simulated time: the rebuild is volatile
    /// work the paper's timeline never charges.
    rebuild_ns: u64,
}

impl ModHeap {
    /// Formats a fresh pool into a MOD heap.
    pub fn create(pm: Pmem) -> ModHeap {
        ModHeap {
            nv: NvHeap::format(pm),
            pending: Vec::new(),
            rebuild_ns: 0,
        }
    }

    /// Formats a fresh **file-backed** pool at `path`: every FASE commit
    /// appends its fence's lines to the pool file's journal, so the heap
    /// survives the death of this process and reopens with
    /// [`ModHeap::open_file`].
    pub fn create_file(path: &Path, cfg: PmemConfig) -> io::Result<ModHeap> {
        Ok(ModHeap::create(Pmem::create_file(path, cfg)?))
    }

    pub(crate) fn from_parts(nv: NvHeap) -> ModHeap {
        ModHeap {
            nv,
            pending: Vec::new(),
            rebuild_ns: 0,
        }
    }

    /// Wall-clock nanoseconds the last [`ModHeap::open`] spent rebuilding
    /// hybrid roots' volatile indices (0 if there were none).
    pub fn rebuild_ns(&self) -> u64 {
        self.rebuild_ns
    }

    /// Replays every hybrid root's spine into a fresh volatile index and
    /// publishes the heads to the root annex. Runs once per open, after
    /// the reachability sweep.
    pub(crate) fn rebuild_hybrid_roots(&mut self) {
        let t0 = std::time::Instant::now();
        let entries = crate::root::all_entries(self.nv());
        let mut any = false;
        for (i, e) in entries.iter().enumerate() {
            if e.kind == crate::erased::RootKind::Spine {
                any = true;
                let (logical, v) = crate::spine::replay(&mut self.nv, e.root);
                self.nv.annex().set(i, crate::spine::pack_annex(logical, v));
            }
        }
        if any {
            self.rebuild_ns = t0.elapsed().as_nanos() as u64;
        }
    }

    /// The committed volatile head of hybrid root `index`: its logical
    /// kind and volatile root address, or `None` if the root is not
    /// hybrid (or does not exist).
    pub(crate) fn hybrid_head(&self, index: usize) -> Option<(crate::erased::RootKind, u64)> {
        match self.nv.annex().get(index) {
            0 => None,
            w => Some(crate::spine::unpack_annex(w)),
        }
    }

    /// The underlying persistent heap.
    pub fn nv(&self) -> &NvHeap {
        &self.nv
    }

    /// Mutable access to the underlying persistent heap (pure updates take
    /// this).
    pub fn nv_mut(&mut self) -> &mut NvHeap {
        &mut self.nv
    }

    /// Consumes the heap, returning the raw pool — an *orderly* close:
    /// if version releases are still deferred (the last commit's pointer
    /// store is not yet known durable), one final fence drains them
    /// first, so the last FASE is durable and no superseded version
    /// leaves the process unreclaimed. A heap with nothing pending pays
    /// no extra fence (crash tests that quiesce and then build
    /// uncommitted state are unaffected); to model a *crash* instead of
    /// a close, take [`mod_pmem::Pmem::crash_image`] through
    /// [`ModHeap::nv`] without consuming the heap.
    pub fn into_pm(mut self) -> Pmem {
        if !self.pending.is_empty() {
            self.fence_and_drain();
        }
        self.nv.into_pm()
    }

    /// Orderly shutdown of a file-backed heap: drains deferred
    /// reclamation (one fence), checkpoints the pool file (journals
    /// drained-but-unfenced lines, compacts, fsyncs) and returns the
    /// pool. On a memory-backed heap the checkpoint is a no-op.
    pub fn close(mut self) -> io::Result<Pmem> {
        self.quiesce();
        let mut pm = self.nv.into_pm();
        pm.checkpoint()?;
        Ok(pm)
    }

    /// Reads a root slot (raw-slot interface; typed code uses
    /// [`ModHeap::current`] instead).
    pub fn read_root(&mut self, slot: usize) -> PmPtr {
        self.nv.read_root(slot)
    }

    /// Queues a superseded version for release after the next fence.
    pub(crate) fn defer_release(&mut self, old: ErasedDs) {
        self.pending.push(old);
    }

    /// Steals the deferred-release queue. The shared-heap commit stage
    /// calls this after every batch commit so superseded chains move to
    /// *epoch-gated* limbo instead of being freed at the next fence —
    /// a snapshot reader pinned at an older epoch may still reach them.
    /// The next `fence_and_drain` then drains an empty queue (the fence
    /// itself still runs; fence counts are unchanged).
    pub(crate) fn take_pending(&mut self) -> Vec<ErasedDs> {
        std::mem::take(&mut self.pending)
    }

    pub(crate) fn fence_and_drain(&mut self) {
        self.nv.sfence();
        // The previous commit's pointer store is now durable; its old
        // version can never be observed by recovery again.
        let pending = std::mem::take(&mut self.pending);
        for e in pending {
            e.release(&mut self.nv);
        }
    }

    /// Publishes a fresh root directory (Fig 8c on the directory parent):
    /// flush the new parent, fence once, swing the directory pointer.
    /// `fresh` names the children whose temporary FASE ownership transfers
    /// to the new directory. `tags` carries one codec-discipline word per
    /// entry (see [`crate::codec`]), preserved across directory rebuilds.
    pub(crate) fn swing_directory(
        &mut self,
        old_dir: PmPtr,
        children: &[ErasedDs],
        fresh: &[ErasedDs],
        tags: &[u64],
    ) {
        let new_dir = crate::parent::store_parent_tagged(&mut self.nv, children, tags);
        for f in fresh {
            self.nv.rc_dec(f.root);
        }
        self.fence_and_drain();
        self.store_root_slot(ROOT_DIR_SLOT, new_dir);
        if !old_dir.is_null() {
            self.pending.push(ErasedDs {
                kind: crate::erased::RootKind::Parent,
                root: old_dir,
            });
        }
    }

    fn store_root_slot(&mut self, slot: usize, root: PmPtr) {
        let addr = self.nv.root_slot_addr(slot);
        let pm = self.nv.pm_mut();
        pm.begin_commit();
        pm.write_u64(addr, root.addr());
        pm.clwb(addr);
        pm.end_commit();
    }

    /// Forces all queued reclamation now by issuing an extra fence. Used
    /// by tests and at orderly shutdown to reach a zero-garbage state.
    pub fn quiesce(&mut self) {
        self.fence_and_drain();
    }

    /// Number of versions awaiting deferred reclamation.
    pub fn pending_reclaims(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root::ROOT_DIR_SLOT;
    use mod_funcds::PmMap;
    use mod_pmem::{CrashPolicy, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn fase_commit_has_one_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        let fences_before = h.nv().pm().stats().fences;
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"v")));
        let fences = h.nv().pm().stats().fences - fences_before;
        assert_eq!(fences, 1, "Fig 10: MOD = one fence per operation");
    }

    #[test]
    fn commit_makes_update_durable() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 7, b"seven")));
        // One more fence so the directory-entry store itself is durable.
        h.quiesce();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(img);
        let map: crate::Root<PmMap> = h2.open_root(0);
        assert_eq!(
            h2.current(map).peek_get(h2.nv(), 7),
            Some(b"seven".to_vec())
        );
    }

    #[test]
    fn deferred_reclaim_waits_one_commit() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.quiesce();
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"a")));
        assert!(
            h.pending_reclaims() >= 1,
            "old version queued, not freed at its own commit"
        );
        let frees_before = h.nv().stats().frees;
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 2, b"b")));
        assert!(
            h.nv().stats().frees > frees_before,
            "previous old version reclaimed at next commit"
        );
    }

    #[test]
    fn quiesce_reaches_zero_garbage() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        for i in 0..20u64 {
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, i, b"v")));
        }
        h.quiesce();
        assert_eq!(h.pending_reclaims(), 0);
        // Zero garbage = only the live version remains: more churn over
        // the same keys must not grow the heap by a single block.
        let steady = h.nv().stats().live_blocks;
        assert!(steady > 0);
        for i in 0..200u64 {
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, i % 20, b"w")));
        }
        h.quiesce();
        assert_eq!(
            h.nv().stats().live_blocks,
            steady,
            "commit churn leaked blocks past quiesce"
        );
    }

    #[test]
    fn root_slot_store_is_a_commit_write() {
        // The directory swing is traced as a commit section: one store,
        // one clwb between CommitBegin/CommitEnd (crash-atomicity tests
        // key off this).
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        let trace_len = h.nv().pm().trace().len();
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"x")));
        use mod_pmem::TraceEvent;
        let t = &h.nv().pm().trace()[trace_len..];
        assert!(t.iter().any(|e| matches!(e, TraceEvent::CommitBegin)));
        assert!(t.iter().any(|e| matches!(e, TraceEvent::CommitEnd)));
    }

    #[test]
    fn directory_slot_is_reserved() {
        assert_eq!(ROOT_DIR_SLOT, mod_alloc::N_ROOTS - 1);
    }

    #[test]
    fn into_pm_drains_pending_reclaims() {
        // Pin the orderly-close fix: consuming the heap right after a
        // FASE (no quiesce) must fence the deferred releases, so the
        // final commit is durable even under the lossiest policy and no
        // superseded version leaves the process unreclaimed.
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"final")));
        assert!(h.pending_reclaims() >= 1, "deferred release outstanding");
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(img);
        let map: crate::Root<PmMap> = h2.open_root(0);
        assert_eq!(
            h2.current(map).peek_get(h2.nv(), 1),
            Some(b"final".to_vec()),
            "the close fence made the last FASE durable"
        );
    }

    #[test]
    fn into_pm_reopens_like_a_quiesced_close() {
        // The free state a reopened pool rebuilds must not depend on
        // whether the closing process quiesced explicitly.
        let run = |quiesce: bool| {
            let mut h = mh();
            let m0 = PmMap::empty(h.nv_mut());
            let map = h.publish(m0);
            for i in 0..10u64 {
                h.fase(|tx| tx.update(map, move |nv, m| m.insert(nv, i, b"v")));
            }
            if quiesce {
                h.quiesce();
            }
            let (h2, report) = ModHeap::open(h.into_pm().crash_image(CrashPolicy::OnlyFenced));
            (report, h2.nv().stats().clone())
        };
        let (r_plain, s_plain) = run(false);
        let (r_quiesced, s_quiesced) = run(true);
        assert_eq!(r_plain, r_quiesced, "identical recovery reports");
        assert_eq!(s_plain, s_quiesced, "identical rebuilt free state");
    }

    #[test]
    fn into_pm_without_pending_adds_no_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"x")));
        h.quiesce();
        assert_eq!(h.pending_reclaims(), 0);
        let fences = h.nv().pm().stats().fences;
        let pm = h.into_pm();
        assert_eq!(
            pm.stats().fences,
            fences,
            "quiesced heaps close without extra ordering points"
        );
    }

    #[test]
    fn file_heap_survives_process_style_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("mod_core_heap_{}.pool", std::process::id()));
        {
            let mut h = ModHeap::create_file(&path, mod_pmem::PmemConfig::testing()).unwrap();
            let m0 = PmMap::empty(h.nv_mut());
            let map = h.publish(m0);
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 5, b"disk")));
            drop(h.close().unwrap());
        }
        // A "different process": nothing shared but the file.
        let (h2, report) = ModHeap::open_file(&path, mod_pmem::PmemConfig::testing()).unwrap();
        assert!(report.live_blocks > 0);
        let map: crate::Root<PmMap> = h2.open_root(0);
        assert_eq!(h2.current(map).peek_get(h2.nv(), 5), Some(b"disk".to_vec()));
        assert!(h2.nv().pm().replay_stats().is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
