//! The MOD heap: commit protocols (Fig 8) and deferred reclamation.
//!
//! A [`ModHeap`] wraps the persistent allocator and provides the paper's
//! Composition interface: after pure updates have produced shadows (all
//! flushed with unordered `clwb`s, zero fences), one of the `commit_*`
//! methods makes them durable and visible:
//!
//! * [`ModHeap::commit_single`] — one datastructure, one or more updates
//!   (Fig 8b): `sfence`, then an atomic 8-byte root-slot store.
//! * [`ModHeap::commit_siblings`] — several structures under one parent
//!   object (Fig 8c): new parent flushed, `sfence`, one pointer store.
//! * [`ModHeap::commit_unrelated`] — several unrelated slots (Fig 8d):
//!   a short redo-logged transaction with three fences.
//!
//! The two common cases use exactly **one ordering point per FASE** — the
//! paper's headline property.
//!
//! ## Reclamation is deferred by one commit
//!
//! Fig 8 reclaims the old version immediately after the (unfenced) pointer
//! store. Freed blocks could then be reused — and overwritten — by the
//! next FASE *before* the pointer store is durable; an adversarial crash
//! would leave the slot pointing at the old version with its nodes
//! clobbered. We therefore queue the superseded version and release it at
//! the *next* commit's fence, when the pointer store is provably durable.
//! This changes no flush/fence counts (reclamation is volatile); it makes
//! the recovery argument of §5.2 hold under any crash timing, which our
//! adversarial crash tests exercise.

use crate::erased::{DurableDs, ErasedDs};
use crate::parent::store_parent;
use crate::root::ROOT_DIR_SLOT;
use mod_alloc::NvHeap;
use mod_pmem::{PmPtr, Pmem};

/// Byte offset of the unrelated-commit log's state word.
pub(crate) const ULOG_STATE: u64 = 576;
/// Byte offset of the log's entry count.
pub(crate) const ULOG_COUNT: u64 = 584;
/// Byte offset of the first `(slot, root)` entry.
pub(crate) const ULOG_ENTRIES: u64 = 592;
/// Maximum entries in one unrelated commit.
pub const ULOG_CAP: usize = 24;
/// Log state: committed, must redo on recovery.
pub(crate) const ULOG_COMMITTED: u64 = 1;

/// The MOD heap: allocator + commit protocols + deferred reclamation.
#[derive(Debug)]
pub struct ModHeap {
    nv: NvHeap,
    /// Versions superseded by a committed pointer store that is not yet
    /// known durable; released after the next fence.
    pending: Vec<ErasedDs>,
}

impl ModHeap {
    /// Formats a fresh pool into a MOD heap.
    pub fn create(pm: Pmem) -> ModHeap {
        ModHeap {
            nv: NvHeap::format(pm),
            pending: Vec::new(),
        }
    }

    pub(crate) fn from_parts(nv: NvHeap) -> ModHeap {
        ModHeap {
            nv,
            pending: Vec::new(),
        }
    }

    /// The underlying persistent heap.
    pub fn nv(&self) -> &NvHeap {
        &self.nv
    }

    /// Mutable access to the underlying persistent heap (pure updates take
    /// this).
    pub fn nv_mut(&mut self) -> &mut NvHeap {
        &mut self.nv
    }

    /// Consumes the heap, returning the raw pool (crash-image plumbing).
    pub fn into_pm(self) -> Pmem {
        self.nv.into_pm()
    }

    /// Reads a root slot (raw-slot interface; typed code uses
    /// [`ModHeap::current`] instead).
    pub fn read_root(&mut self, slot: usize) -> PmPtr {
        self.nv.read_root(slot)
    }

    /// Queues a superseded version for release after the next fence.
    pub(crate) fn defer_release(&mut self, old: ErasedDs) {
        self.pending.push(old);
    }

    pub(crate) fn fence_and_drain(&mut self) {
        self.nv.sfence();
        // The previous commit's pointer store is now durable; its old
        // version can never be observed by recovery again.
        let pending = std::mem::take(&mut self.pending);
        for e in pending {
            e.release(&mut self.nv);
        }
    }

    /// Publishes a fresh root directory (Fig 8c on the directory parent):
    /// flush the new parent, fence once, swing the directory pointer.
    /// `fresh` names the children whose temporary FASE ownership transfers
    /// to the new directory. `tags` carries one codec-discipline word per
    /// entry (see [`crate::codec`]), preserved across directory rebuilds.
    pub(crate) fn swing_directory(
        &mut self,
        old_dir: PmPtr,
        children: &[ErasedDs],
        fresh: &[ErasedDs],
        tags: &[u64],
    ) {
        let new_dir = crate::parent::store_parent_tagged(&mut self.nv, children, tags);
        for f in fresh {
            self.nv.rc_dec(f.root);
        }
        self.fence_and_drain();
        self.store_root_slot(ROOT_DIR_SLOT, new_dir);
        if !old_dir.is_null() {
            self.pending.push(ErasedDs {
                kind: crate::erased::RootKind::Parent,
                root: old_dir,
            });
        }
    }

    fn store_root_slot(&mut self, slot: usize, root: PmPtr) {
        let addr = self.nv.root_slot_addr(slot);
        let pm = self.nv.pm_mut();
        pm.begin_commit();
        pm.write_u64(addr, root.addr());
        pm.clwb(addr);
        pm.end_commit();
    }

    /// Commits one datastructure updated one or more times in this FASE
    /// (Fig 8b). `old` is the currently published version in `slot`;
    /// `intermediates` are shadows superseded within the FASE (Fig 7b);
    /// `new` becomes the published version.
    ///
    /// Exactly one ordering point. The root-slot store is atomic (8 bytes)
    /// and flushed; the *next* FASE's fence orders it, per the epoch
    /// persistency argument of §5.1.
    ///
    /// # Panics
    ///
    /// Panics if `new` aliases `old` (a no-op FASE must skip commit).
    #[deprecated(
        since = "0.2.0",
        note = "use `ModHeap::fase` with a typed `Root<D>` instead of raw slots"
    )]
    pub fn commit_single<D: DurableDs>(
        &mut self,
        slot: usize,
        old: D,
        intermediates: &[D],
        new: D,
    ) {
        assert_ne!(
            slot, ROOT_DIR_SLOT,
            "slot {slot} is reserved for the typed root directory"
        );
        assert_ne!(
            old.root_ptr(),
            new.root_ptr(),
            "no-op FASE: nothing to commit"
        );
        self.fence_and_drain();
        self.store_root_slot(slot, new.root_ptr());
        // Intermediate shadows were never published: reclaim immediately.
        for d in intermediates {
            d.release_version(&mut self.nv);
        }
        self.pending.push(old.erase());
    }

    /// Publishes the very first version into an empty slot (no previous
    /// version to supersede). One ordering point.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or is [`ROOT_DIR_SLOT`] (reserved
    /// for the typed root directory).
    #[deprecated(
        since = "0.2.0",
        note = "use `ModHeap::publish`, which returns a typed `Root<D>`"
    )]
    pub fn publish_root<D: DurableDs>(&mut self, slot: usize, new: D) {
        assert_ne!(
            slot, ROOT_DIR_SLOT,
            "slot {slot} is reserved for the typed root directory"
        );
        let cur = self.nv.read_root(slot);
        assert!(cur.is_null(), "slot {slot} already holds {cur}");
        self.fence_and_drain();
        self.store_root_slot(slot, new.root_ptr());
    }

    /// Commits updates to sibling datastructures grouped under the parent
    /// object in `slot` (Fig 8c): builds and flushes a new parent pointing
    /// at `children`, fences once, and swings the slot pointer to the new
    /// parent. `old_parent` (and, through it, the superseded child
    /// versions it owns) is reclaimed after the next fence.
    ///
    /// `children` lists the complete new child set, typically a mix of
    /// fresh shadows and versions carried over unchanged from the old
    /// parent. `fresh` names the subset this FASE created and temp-owns:
    /// the commit transfers that ownership to the new parent. Carried-over
    /// children keep their old-parent reference until the deferred release
    /// of `old_parent` — by which time the new parent holds its own.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    #[deprecated(
        since = "0.2.0",
        note = "use `ModHeap::fase` — all typed roots are siblings under the root directory"
    )]
    pub fn commit_siblings(
        &mut self,
        slot: usize,
        old_parent: PmPtr,
        children: &[ErasedDs],
        fresh: &[ErasedDs],
    ) {
        assert_ne!(
            slot, ROOT_DIR_SLOT,
            "slot {slot} is reserved for the typed root directory"
        );
        let new_parent = store_parent(&mut self.nv, children);
        // The new parent now owns every child; drop this FASE's temporary
        // ownership of the shadows it built.
        for c in fresh {
            debug_assert!(
                children.iter().any(|k| k.root == c.root),
                "fresh entry {:?} not among the committed children",
                c.root
            );
            self.nv.rc_dec(c.root);
        }
        self.fence_and_drain();
        self.store_root_slot(slot, new_parent);
        if !old_parent.is_null() {
            self.pending.push(ErasedDs {
                kind: crate::erased::RootKind::Parent,
                root: old_parent,
            });
        }
    }

    /// Commits updates to multiple *unrelated* root slots atomically
    /// (Fig 8d) via a short persistent redo log: three ordering points
    /// instead of one, as the paper concedes for the general case.
    ///
    /// Each element is `(slot, old_version, new_version)`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`ULOG_CAP`] slots are updated at once, or on a
    /// no-op pair.
    #[deprecated(
        since = "0.2.0",
        note = "use `ModHeap::fase` — the root directory commits any root combination \
                with one ordering point instead of this three-fence redo log"
    )]
    pub fn commit_unrelated(&mut self, updates: &[(usize, ErasedDs, ErasedDs)]) {
        assert!(updates.len() <= ULOG_CAP, "too many slots in one FASE");
        // Build the redo log (metadata region, no allocation needed).
        {
            let pm = self.nv.pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_COUNT, updates.len() as u64);
            for (i, (slot, old, new)) in updates.iter().enumerate() {
                assert_ne!(
                    *slot, ROOT_DIR_SLOT,
                    "slot {slot} is reserved for the typed root directory"
                );
                assert_ne!(old.root, new.root, "no-op FASE entry for slot {slot}");
                let base = ULOG_ENTRIES + 16 * i as u64;
                pm.write_u64(base, *slot as u64);
                pm.write_u64(base + 8, new.root.addr());
            }
            pm.flush_range(ULOG_COUNT, 8 + 16 * updates.len() as u64);
            pm.end_commit();
        }
        // Fence #1: shadows + log entries durable.
        self.fence_and_drain();
        {
            let pm = self.nv.pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_STATE, ULOG_COMMITTED);
            pm.clwb(ULOG_STATE);
            pm.sfence(); // Fence #2: commit point.
            for (slot, _, new) in updates {
                let addr = mod_alloc::layout::root_slot_offset(*slot);
                pm.write_u64(addr, new.root.addr());
                pm.clwb(addr);
            }
            // Fence #3: the slot stores must be durable before the log is
            // retired — otherwise a crash could persist the retire store
            // while dropping a slot store, and recovery would skip the
            // redo, leaving the FASE half-applied. (After this fence the
            // retire store itself may land whenever; a lingering state=1
            // only triggers an idempotent re-apply.)
            pm.sfence();
            pm.write_u64(ULOG_STATE, 0);
            pm.clwb(ULOG_STATE);
            pm.end_commit();
        }
        for (_, old, _) in updates {
            self.pending.push(*old);
        }
    }

    /// Forces all queued reclamation now by issuing an extra fence. Used
    /// by tests and at orderly shutdown to reach a zero-garbage state.
    pub fn quiesce(&mut self) {
        self.fence_and_drain();
    }

    /// Number of versions awaiting deferred reclamation.
    pub fn pending_reclaims(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercises the deprecated raw-slot commit protocols
mod tests {
    use super::*;
    use mod_funcds::{PmMap, PmQueue};
    use mod_pmem::{CrashPolicy, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn basic_fase_has_one_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let fences_before = h.nv().pm().stats().fences;
        // One FASE: pure update + commit.
        let m1 = m0.insert(h.nv_mut(), 1, b"v");
        h.commit_single(0, m0, &[], m1);
        let fences = h.nv().pm().stats().fences - fences_before;
        assert_eq!(fences, 1, "Fig 10: MOD = one fence per operation");
        assert_eq!(h.read_root(0), m1.root());
    }

    #[test]
    fn commit_makes_update_durable() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let m1 = m0.insert(h.nv_mut(), 7, b"seven");
        h.commit_single(0, m0, &[], m1);
        // One more fence so the slot store itself is durable.
        h.quiesce();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut nv = NvHeap::open(img);
        let root = nv.read_root(0);
        let m = PmMap::from_root(root);
        m.mark(&mut nv);
        nv.finish_recovery();
        assert_eq!(m.get(&mut nv, 7), Some(b"seven".to_vec()));
    }

    #[test]
    fn deferred_reclaim_waits_one_commit() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let m1 = m0.insert(h.nv_mut(), 1, b"a");
        h.commit_single(0, m0, &[], m1);
        assert_eq!(h.pending_reclaims(), 1, "old version queued, not freed");
        let frees_before = h.nv().stats().frees;
        let m2 = m1.insert(h.nv_mut(), 2, b"b");
        h.commit_single(0, m1, &[], m2);
        assert!(
            h.nv().stats().frees > frees_before,
            "previous old version reclaimed at next commit"
        );
    }

    #[test]
    fn multi_update_fase_reclaims_intermediates_immediately() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let frees_before = h.nv().stats().frees;
        // Fig 7b: two updates, one FASE.
        let m1 = m0.insert(h.nv_mut(), 1, b"a");
        let m2 = m1.insert(h.nv_mut(), 2, b"b");
        h.commit_single(0, m0, &[m1], m2);
        assert!(h.nv().stats().frees > frees_before);
        assert_eq!(h.read_root(0), m2.root());
        assert_eq!(m2.get(h.nv_mut(), 1), Some(b"a".to_vec()));
    }

    #[test]
    fn siblings_commit_single_fence() {
        let mut h = mh();
        let m = PmMap::empty(h.nv_mut());
        let q = PmQueue::empty(h.nv_mut());
        h.commit_siblings(
            3,
            PmPtr::NULL,
            &[m.erase(), q.erase()],
            &[m.erase(), q.erase()],
        );
        let fences_before = h.nv().pm().stats().fences;
        let old_parent = h.read_root(3);
        let m2 = m.insert(h.nv_mut(), 5, b"x");
        let q2 = q.enqueue(h.nv_mut(), 9);
        h.commit_siblings(
            3,
            old_parent,
            &[m2.erase(), q2.erase()],
            &[m2.erase(), q2.erase()],
        );
        assert_eq!(
            h.nv().pm().stats().fences - fences_before,
            1,
            "sibling FASE also needs exactly one fence"
        );
        let parent = h.read_root(3);
        let kids = crate::parent::children_of(h.nv_mut(), parent);
        assert_eq!(kids[0].root, m2.root());
        assert_eq!(kids[1].root, q2.root());
    }

    #[test]
    fn carried_over_siblings_survive_old_parent_release() {
        // A FASE that updates only ONE of the siblings: the unchanged
        // child must outlive the deferred release of the old parent.
        let mut h = mh();
        let stable = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"stable");
        let mut churn = PmQueue::empty(h.nv_mut());
        h.commit_siblings(
            3,
            PmPtr::NULL,
            &[stable.erase(), churn.erase()],
            &[stable.erase(), churn.erase()],
        );
        for i in 0..5u64 {
            let old_parent = h.read_root(3);
            let next = churn.enqueue(h.nv_mut(), i);
            h.commit_siblings(
                3,
                old_parent,
                &[stable.erase(), next.erase()],
                &[next.erase()],
            );
            churn = next;
        }
        h.quiesce();
        // The stable map must still be intact and owned exactly once (by
        // the current parent).
        assert_eq!(stable.get(h.nv_mut(), 1), Some(b"stable".to_vec()));
        assert_eq!(h.nv().rc_get(stable.root()), 1);
        assert_eq!(churn.len(h.nv_mut()), 5);
    }

    #[test]
    fn unrelated_commit_swings_all_slots() {
        let mut h = mh();
        let a0 = PmMap::empty(h.nv_mut());
        let b0 = PmQueue::empty(h.nv_mut());
        h.publish_root(0, a0);
        h.publish_root(1, b0);
        let a1 = a0.insert(h.nv_mut(), 1, b"x");
        let b1 = b0.enqueue(h.nv_mut(), 42);
        h.commit_unrelated(&[(0, a0.erase(), a1.erase()), (1, b0.erase(), b1.erase())]);
        assert_eq!(h.read_root(0), a1.root());
        assert_eq!(h.read_root(1), b1.root());
        // Log retired.
        assert_eq!(h.nv_mut().pm_mut().read_u64(ULOG_STATE), 0);
    }

    #[test]
    fn unrelated_commit_uses_more_fences() {
        let mut h = mh();
        let a0 = PmMap::empty(h.nv_mut());
        let b0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, a0);
        h.publish_root(1, b0);
        let fences_before = h.nv().pm().stats().fences;
        let a1 = a0.insert(h.nv_mut(), 1, b"x");
        let b1 = b0.insert(h.nv_mut(), 2, b"y");
        h.commit_unrelated(&[(0, a0.erase(), a1.erase()), (1, b0.erase(), b1.erase())]);
        let fences = h.nv().pm().stats().fences - fences_before;
        assert_eq!(fences, 3, "general case pays extra ordering (Fig 8d)");
    }

    #[test]
    fn quiesce_reaches_zero_garbage() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let mut cur = m0;
        for i in 0..20u64 {
            let next = cur.insert(h.nv_mut(), i, b"v");
            h.commit_single(0, cur, &[], next);
            cur = next;
        }
        h.quiesce();
        assert_eq!(h.pending_reclaims(), 0);
        // Only the live version's blocks remain: root obj + nodes + blobs.
        let live = h.nv().stats().live_blocks;
        cur.release(h.nv_mut());
        let _ = live;
        assert_eq!(h.nv().stats().live_blocks, 0);
    }

    #[test]
    #[should_panic(expected = "no-op FASE")]
    fn noop_commit_rejected() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        h.commit_single(0, m0, &[], m0);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_publish_rejected() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let m1 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m1);
    }
}
