//! Deterministic seeded round-robin scheduler for concurrent tests.
//!
//! Real OS threads make interleavings nondeterministic, which would make
//! multi-threaded crash tests unreproducible. [`SeededRoundRobin`] fixes
//! that with a *turnstile*: worker threads call [`SeededRoundRobin::step`]
//! before each operation and block until the scheduler grants them the
//! (single) run token, in an order derived deterministically from a seed
//! — each scheduling round visits every unfinished worker once, in a
//! seeded permutation. Only the token holder runs, so the global order of
//! operations is a pure function of `(seed, worker count, per-worker op
//! streams)`, even though the workers are genuine `std::thread`s.
//!
//! The scheduler can also *halt* after a fixed number of granted steps
//! ([`SeededRoundRobin::with_halt`]): every subsequent `step` returns
//! [`Turn::Halt`], letting a crash-injection harness freeze the run at an
//! exact step boundary, snapshot the pool, and join the workers — the
//! simulated-crash analogue of pulling the power mid-schedule.

use std::sync::{Condvar, Mutex};

/// What a worker should do after calling [`SeededRoundRobin::step`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Turn {
    /// Run one operation, then call `step` (or `finish`) again.
    Run,
    /// The scheduler halted (crash injection): stop immediately without
    /// performing further operations.
    Halt,
}

#[derive(Debug)]
struct SchedState {
    /// Permutation of workers for the current round.
    order: Vec<usize>,
    /// Position within `order`.
    pos: usize,
    /// Round counter (reseeds the permutation).
    round: u64,
    /// Which worker currently holds the run token, if any.
    holder: Option<usize>,
    /// Workers that called `finish` and leave the rotation.
    done: Vec<bool>,
    /// Steps granted so far.
    steps: u64,
    /// Halt before granting step number `halt_at` (1-based), if set.
    halt_at: Option<u64>,
    halted: bool,
}

/// A deterministic turnstile over `n` worker threads (see module docs).
#[derive(Debug)]
pub struct SeededRoundRobin {
    seed: u64,
    state: Mutex<SchedState>,
    cv: Condvar,
}

fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    // SplitMix64 scramble so that nearby seeds diverge; xorshift must
    // not start at 0.
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    rng = (rng ^ (rng >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    if rng == 0 {
        rng = 0x2545_F491_4F6C_DD1D;
    }
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (xorshift64(&mut rng) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

impl SeededRoundRobin {
    /// A scheduler over `n` workers with the given seed, never halting.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(seed: u64, n: usize) -> SeededRoundRobin {
        SeededRoundRobin::with_halt(seed, n, None)
    }

    /// A scheduler that halts before granting step `halt_at` (1-based):
    /// `halt_at = Some(0)` halts immediately, `Some(k)` lets exactly `k`
    /// operations run.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_halt(seed: u64, n: usize, halt_at: Option<u64>) -> SeededRoundRobin {
        assert!(n > 0, "scheduler needs at least one worker");
        SeededRoundRobin {
            seed,
            state: Mutex::new(SchedState {
                order: permutation(seed, n),
                pos: 0,
                round: 0,
                holder: None,
                done: vec![false; n],
                steps: 0,
                halt_at,
                halted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Whose turn it is, skipping finished workers; `None` when everyone
    /// finished.
    fn current_turn(state: &mut SchedState, seed: u64) -> Option<usize> {
        loop {
            if state.done.iter().all(|&d| d) {
                return None;
            }
            if state.pos >= state.order.len() {
                state.round += 1;
                state.order = permutation(
                    seed ^ state.round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    state.order.len(),
                );
                state.pos = 0;
            }
            let w = state.order[state.pos];
            if state.done[w] {
                state.pos += 1;
                continue;
            }
            return Some(w);
        }
    }

    /// Blocks until worker `w` is granted the run token (or the
    /// scheduler halts). The worker's *previous* token is released first,
    /// so exactly one worker is ever running.
    pub fn step(&self, w: usize) -> Turn {
        let mut state = self.state.lock().unwrap();
        if state.holder == Some(w) {
            state.holder = None;
            state.pos += 1;
            self.cv.notify_all();
        }
        loop {
            if state.halted {
                return Turn::Halt;
            }
            if state.holder.is_none() && Self::current_turn(&mut state, self.seed) == Some(w) {
                break;
            }
            state = self.cv.wait(state).unwrap();
        }
        if let Some(h) = state.halt_at {
            if state.steps >= h {
                state.halted = true;
                self.cv.notify_all();
                return Turn::Halt;
            }
        }
        state.steps += 1;
        state.holder = Some(w);
        Turn::Run
    }

    /// Worker `w` leaves the rotation (its op stream is exhausted),
    /// releasing the token if it holds it.
    pub fn finish(&self, w: usize) {
        let mut state = self.state.lock().unwrap();
        if state.holder == Some(w) {
            state.holder = None;
            state.pos += 1;
        }
        state.done[w] = true;
        self.cv.notify_all();
    }

    /// Steps granted so far (total operations run before any halt).
    pub fn steps_granted(&self) -> u64 {
        self.state.lock().unwrap().steps
    }

    /// Whether the scheduler halted (crash injection fired).
    pub fn halted(&self) -> bool {
        self.state.lock().unwrap().halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Drives `n` workers doing `ops` steps each; returns the granted
    /// global order of (worker, op#) pairs.
    fn run_schedule(seed: u64, n: usize, ops: usize, halt_at: Option<u64>) -> Vec<(usize, usize)> {
        let sched = Arc::new(SeededRoundRobin::with_halt(seed, n, halt_at));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for w in 0..n {
            let sched = Arc::clone(&sched);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for op in 0..ops {
                    match sched.step(w) {
                        Turn::Run => log.lock().unwrap().push((w, op)),
                        Turn::Halt => break,
                    }
                }
                sched.finish(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(log).unwrap().into_inner().unwrap()
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let a = run_schedule(42, 4, 6, None);
        let b = run_schedule(42, 4, 6, None);
        let c = run_schedule(43, 4, 6, None);
        assert_eq!(a, b, "same seed, same interleaving");
        assert_ne!(a, c, "different seed, different interleaving");
        assert_eq!(a.len(), 24, "every op ran");
    }

    #[test]
    fn rounds_visit_every_worker_once() {
        let order = run_schedule(7, 4, 5, None);
        for round in 0..5 {
            let mut workers: Vec<usize> = order[round * 4..(round + 1) * 4]
                .iter()
                .map(|&(w, _)| w)
                .collect();
            workers.sort_unstable();
            assert_eq!(workers, vec![0, 1, 2, 3], "round {round} visits all");
        }
        // Per-worker ops arrive in program order.
        for w in 0..4 {
            let ops: Vec<usize> = order
                .iter()
                .filter(|&&(x, _)| x == w)
                .map(|&(_, o)| o)
                .collect();
            assert_eq!(ops, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn halt_freezes_after_exact_step_count() {
        for k in [0u64, 1, 5, 11] {
            let order = run_schedule(9, 4, 5, Some(k));
            assert_eq!(order.len(), k as usize, "halt_at={k}");
            // The granted prefix matches the unhalted schedule.
            let full = run_schedule(9, 4, 5, None);
            assert_eq!(order, full[..k as usize]);
        }
    }

    #[test]
    fn early_finishers_leave_the_rotation() {
        // Worker 0 does 1 op, others do 4: no deadlock, all ops granted.
        let sched = Arc::new(SeededRoundRobin::new(3, 3));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for w in 0..3 {
            let sched = Arc::clone(&sched);
            let log = Arc::clone(&log);
            let ops = if w == 0 { 1 } else { 4 };
            handles.push(std::thread::spawn(move || {
                for op in 0..ops {
                    match sched.step(w) {
                        Turn::Run => log.lock().unwrap().push((w, op)),
                        Turn::Halt => break,
                    }
                }
                sched.finish(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.lock().unwrap().len(), 9);
    }
}
