//! `SharedModHeap`: a thread-safe, sharded front end with pipelined FASE
//! commits.
//!
//! The single-owner [`ModHeap`] gives one thread one FASE at a time, and
//! every FASE pays its own ordering point. Under concurrency the paper's
//! Fig 4 observation — flushes overlap almost for free, fences are the
//! serial bottleneck (Amdahl f ≈ 0.82) — says we can do much better:
//! *batch* the commit points. [`SharedModHeap`] lets `N` worker threads
//! stage FASEs concurrently and funnels them through a **pipelined commit
//! stage**: staged FASEs accumulate into a batch, and when every active
//! worker has staged one (or the pipeline is flushed), the whole batch
//! publishes with **one `sfence` + one atomic pointer store** — the same
//! single ordering point a lone FASE costs, now amortized over `N` FASEs.
//!
//! Since the overlapped-drain latency model, the amortization is double:
//! every `clwb` a worker issues while *staging* starts draining on the
//! shared WPQ immediately, so by the time the batch fence runs, much of
//! the drain backlog has already been hidden under the other workers'
//! staging compute and the fence pays only the residual
//! ([`SharedModHeap::overlap_ratio`] reports how much was hidden).
//!
//! ## Sharding
//!
//! Each worker owns a *shard*: a private allocation arena + free lists in
//! the persistent heap ([`mod_alloc::NvHeap::configure_shards`]) and a
//! private simulated timeline (a lane clock in [`mod_pmem::Pmem`]). Pure
//! shadow building — the bulk of a FASE — happens on the worker's own
//! lane, so `N` workers' update work overlaps in simulated time; at a
//! batch commit the participant lanes synchronize (stall) on the shared
//! fence, exactly like cores draining one write-pending queue.
//!
//! ## Semantics
//!
//! * Every FASE is individually failure-atomic: the batch publishes all
//!   of its FASEs with one pointer store, so a crash leaves each FASE
//!   entirely in or entirely out — never half-applied.
//! * FASEs in a batch serialize in staging order: a later FASE sees the
//!   staged shadows of earlier FASEs in the same batch (its `tx.current`
//!   chains on the batch head), so two threads updating one map both
//!   take effect.
//! * Durability is *group-commit*: `fase` returns when the update is
//!   staged; it becomes durable at the batch's fence. A crash can drop a
//!   staged-but-unbatched suffix — each FASE still all-or-nothing.
//!   [`SharedModHeap::flush`] forces a partial batch out.
//!
//! Determinism: `SharedModHeap` is `Send + Sync` and safe under any
//! interleaving; driving the workers through a
//! [`crate::sched::SeededRoundRobin`] turnstile makes runs bit-for-bit
//! reproducible (the concurrent crash tests do exactly that).

use crate::fase::{Fase, PendingUpdate};
use crate::heap::ModHeap;
use mod_alloc::RecoveryReport;
use mod_pmem::{CrashPolicy, PmPtr, Pmem};
use std::sync::{Arc, Mutex};

/// Pipeline counters (volatile, observability only).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// FASEs staged through [`SharedModHeap::fase`].
    pub fases: u64,
    /// Batches committed (each cost exactly one ordering point).
    pub batches: u64,
    /// FASEs carried by those batches (≤ `fases`: all-no-op batches
    /// commit nothing and are free).
    pub batched_fases: u64,
    /// Largest batch committed so far.
    pub max_batch: usize,
}

#[derive(Debug)]
struct SharedState {
    heap: ModHeap,
    workers: usize,
    active: Vec<bool>,
    /// Whether each worker has a FASE staged in the current batch.
    staged: Vec<bool>,
    /// Merged per-root staged heads of the current batch.
    batch: Vec<PendingUpdate>,
    /// Workers participating in the current batch (stagers, including
    /// no-op FASEs: they synchronize on the batch fence too).
    participants: Vec<usize>,
    stats: PipelineStats,
}

impl SharedState {
    /// Merges one FASE's staged updates into the batch: chains on the
    /// existing per-root heads (which the FASE already saw through its
    /// overlay), turning superseded heads into intra-batch intermediates.
    fn merge(&mut self, pending: Vec<PendingUpdate>) {
        for p in pending {
            match self.batch.iter_mut().find(|e| e.index == p.index) {
                Some(entry) => {
                    debug_assert_eq!(entry.kind, p.kind, "batch kind drift");
                    let old_head = crate::erased::ErasedDs {
                        kind: entry.kind,
                        root: entry.new,
                    };
                    entry.intermediates.push(old_head);
                    entry.intermediates.extend(p.intermediates);
                    entry.new = p.new;
                }
                None => self.batch.push(p),
            }
        }
    }

    /// Publishes the current batch with one ordering point, synchronizing
    /// the participants' lanes on the shared fence. `leader`'s shard is
    /// charged the commit work itself.
    fn commit_batch(&mut self, leader: Option<usize>) {
        let participants = std::mem::take(&mut self.participants);
        self.staged.iter_mut().for_each(|s| *s = false);
        let batch = std::mem::take(&mut self.batch);
        if batch.is_empty() {
            return; // all-no-op batch: no fence, no cost
        }
        let fases = participants.len();
        let lead = leader.or_else(|| participants.last().copied()).unwrap_or(0);
        // The fence is a shared event: it starts once the slowest
        // participant has finished staging.
        let pm = self.heap.nv_mut().pm_mut();
        let t0 = participants
            .iter()
            .map(|&w| pm.lane_ns(w))
            .fold(0.0, f64::max);
        for &w in &participants {
            pm.sync_lane_to(w, t0);
        }
        self.heap.nv_mut().set_active_shard(lead);
        self.heap.commit_fase(batch);
        // Everyone leaves the commit at the fence's completion time.
        let pm = self.heap.nv_mut().pm_mut();
        let t1 = pm.lane_ns(lead);
        for &w in &participants {
            pm.sync_lane_to(w, t1);
        }
        self.stats.batches += 1;
        self.stats.batched_fases += fases as u64;
        self.stats.max_batch = self.stats.max_batch.max(fases);
    }

    /// Whether the current batch's quorum is complete: someone staged,
    /// and no still-active worker is missing. Vacuously complete when
    /// the *last* active worker deregisters with FASEs staged — the
    /// batch must commit then, or cleanly exiting workers would strand
    /// their final (acknowledged) FASEs unfenced.
    fn all_active_staged(&self) -> bool {
        !self.participants.is_empty()
            && (0..self.workers).all(|w| !self.active[w] || self.staged[w])
    }
}

/// A thread-safe, sharded MOD heap with pipelined FASE commits (see the
/// module docs). Cheap to clone; all clones share one heap.
#[derive(Clone, Debug)]
pub struct SharedModHeap {
    inner: Arc<Mutex<SharedState>>,
}

// `SharedModHeap` must stay shareable across worker threads; this is the
// crate's Send/Sync audit point for the whole `PmPtr`-holding tower
// (Pmem → NvHeap → ModHeap).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<SharedModHeap>();
    assert_send::<ModHeap>();
    assert_send::<crate::erased::ErasedDs>();
    // Typed handles cross thread boundaries by value in the workers.
    assert_send_sync::<crate::Root<mod_funcds::PmMap>>();
    assert_send_sync::<crate::DurableMap<String, Vec<u8>>>();
    assert_send_sync::<crate::DurableSet<u64>>();
    assert_send_sync::<crate::DurableVector<u64>>();
    assert_send_sync::<crate::DurableStack<u64>>();
    assert_send_sync::<crate::DurableQueue<u64>>();
    assert_send_sync::<crate::sched::SeededRoundRobin>();
};

impl SharedModHeap {
    /// Formats a fresh pool into a shared heap with one shard (arena +
    /// simulated timeline) per worker.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the pool is too small to shard.
    pub fn create(pm: Pmem, workers: usize) -> SharedModHeap {
        SharedModHeap::from_heap(ModHeap::create(pm), workers)
    }

    /// Wraps an existing single-owner heap (e.g. one that just finished
    /// recovery), sharding it for `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, the heap already has shards, or the
    /// remaining pool space is too small to shard.
    pub fn from_heap(mut heap: ModHeap, workers: usize) -> SharedModHeap {
        heap.nv_mut().configure_shards(workers);
        SharedModHeap {
            inner: Arc::new(Mutex::new(SharedState {
                heap,
                workers,
                active: vec![true; workers],
                staged: vec![false; workers],
                batch: Vec::new(),
                participants: Vec::new(),
                stats: PipelineStats::default(),
            })),
        }
    }

    /// Opens a (possibly crashed) pool, recovers it, and shards it for
    /// `workers` worker threads.
    pub fn open(pm: Pmem, workers: usize) -> (SharedModHeap, RecoveryReport) {
        let (heap, report) = ModHeap::open(pm);
        (SharedModHeap::from_heap(heap, workers), report)
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.inner.lock().unwrap().workers
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        self.inner.lock().unwrap()
    }

    /// Runs a FASE on behalf of `worker`, staging its updates into the
    /// current batch. The closure sees earlier FASEs of the batch
    /// (read-your-batch); the batch publishes — one `sfence`, one pointer
    /// store — once every active worker has staged (or on
    /// [`SharedModHeap::flush`]). If `worker` already has a FASE staged,
    /// the pipeline stalls: the open batch commits first.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or deregistered.
    pub fn fase<R>(&self, worker: usize, f: impl FnOnce(&mut Fase<'_>) -> R) -> R {
        let mut st = self.lock();
        assert!(worker < st.workers, "worker {worker} out of range");
        assert!(st.active[worker], "worker {worker} deregistered");
        if st.staged[worker] {
            // This worker outpaced the batch: drain it before re-staging.
            st.commit_batch(Some(worker));
        }
        st.heap.nv_mut().set_active_shard(worker);
        let overlay: Vec<(usize, PmPtr)> = st.batch.iter().map(|p| (p.index, p.new)).collect();
        let (pending, out) = st.heap.stage_fase(overlay, f);
        st.merge(pending);
        st.staged[worker] = true;
        st.participants.push(worker);
        st.stats.fases += 1;
        if st.all_active_staged() {
            st.commit_batch(Some(worker));
        }
        out
    }

    /// Commits any partially filled batch now (one ordering point). Used
    /// at the end of a run and by orderly shutdown.
    pub fn flush(&self) {
        self.lock().commit_batch(None);
    }

    /// Removes `worker` from the batch-completion quorum (its op stream
    /// is exhausted). If the remaining active workers have all staged,
    /// the batch commits — stragglers cannot stall the pipeline forever.
    pub fn deregister(&self, worker: usize) {
        let mut st = self.lock();
        st.active[worker] = false;
        if st.all_active_staged() {
            st.commit_batch(None);
        }
    }

    /// Single-threaded setup access to the underlying heap (publishing
    /// roots, preloading). Must not run concurrently with worker FASEs —
    /// the lock enforces exclusion, the assert catches misuse.
    ///
    /// # Panics
    ///
    /// Panics if a batch is (partially) staged.
    pub fn setup<R>(&self, f: impl FnOnce(&mut ModHeap) -> R) -> R {
        let mut st = self.lock();
        assert!(
            st.batch.is_empty() && st.participants.is_empty(),
            "setup() with FASEs staged in the pipeline"
        );
        f(&mut st.heap)
    }

    /// Read-only access to the heap (lookups, stats).
    pub fn with<R>(&self, f: impl FnOnce(&ModHeap) -> R) -> R {
        f(&self.lock().heap)
    }

    /// Pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        self.lock().stats.clone()
    }

    /// Simulated wall-clock time: the slowest worker lane (lanes run in
    /// parallel; fences synchronize them).
    pub fn sim_wall_ns(&self) -> f64 {
        self.with(|h| h.nv().pm().wall_ns())
    }

    /// All worker lanes' PM counters rolled up into one total (the
    /// per-lane overlap/residual accounting included).
    pub fn lane_stats(&self) -> mod_pmem::PmStats {
        self.with(|h| h.nv().pm().rolled_up_shard_stats())
    }

    /// Fraction of the workers' WPQ drain workload hidden under staging
    /// compute instead of stalled on at batch fences
    /// ([`mod_pmem::PmStats::overlap_ratio`] over the rolled-up lanes).
    /// This is the number that shows group commits genuinely amortize:
    /// 0 means every batch fence paid the full serialized drain, values
    /// toward 1 mean the pipelined staging hid it.
    pub fn overlap_ratio(&self) -> f64 {
        self.lane_stats().overlap_ratio()
    }

    /// Flushes the pipeline, then issues an extra fence so all deferred
    /// reclamation completes (see [`ModHeap::quiesce`]).
    pub fn quiesce(&self) {
        let mut st = self.lock();
        st.commit_batch(None);
        st.heap.quiesce();
    }

    /// Takes a crash image of the pool *as is* — staged-but-uncommitted
    /// FASEs are naturally lost, exactly like power failing mid-pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless the pool was created with crash simulation.
    pub fn crash_image(&self, policy: CrashPolicy) -> Pmem {
        self.with(|h| h.nv().pm().crash_image(policy))
    }

    /// Unwraps the shared heap after all workers are done (flushes the
    /// pipeline first).
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle are still alive.
    pub fn into_heap(self) -> ModHeap {
        self.flush();
        let state = Arc::try_unwrap(self.inner)
            .expect("into_heap with live SharedModHeap clones")
            .into_inner()
            .unwrap();
        state.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{DurableMap, DurableQueue};
    use mod_pmem::PmemConfig;

    fn shared(workers: usize) -> SharedModHeap {
        SharedModHeap::create(Pmem::new(PmemConfig::testing()), workers)
    }

    #[test]
    fn batch_of_n_fases_costs_one_fence() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let fences = sh.with(|h| h.nv().pm().stats().fences);
        for w in 0..4 {
            sh.fase(w, |tx| map.insert_in(tx, &(w as u64), &1));
        }
        let delta = sh.with(|h| h.nv().pm().stats().fences) - fences;
        assert_eq!(delta, 1, "four FASEs, one pipelined ordering point");
        let stats = sh.stats();
        assert_eq!(stats.fases, 4);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_fases, 4);
        assert_eq!(stats.max_batch, 4);
        // All four updates took effect (batch FASEs serialize).
        sh.with(|h| {
            for w in 0..4u64 {
                assert_eq!(map.get(h, &w), Some(1));
            }
        });
    }

    #[test]
    fn batch_fases_serialize_on_one_root() {
        // All workers increment the same key: read-your-batch must chain
        // them, not lose updates.
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| map.insert(h, &0, &0));
        for _round in 0..3 {
            for w in 0..4 {
                sh.fase(w, |tx| {
                    let cur = map.get_in(tx, &0).unwrap();
                    map.insert_in(tx, &0, &(cur + 1));
                });
            }
        }
        sh.flush();
        assert_eq!(sh.with(|h| map.get(h, &0)), Some(12), "no lost updates");
    }

    #[test]
    fn fast_worker_stalls_pipeline_instead_of_overwriting() {
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        // Worker 0 stages twice in a row; the second fase forces the
        // half-full batch out first.
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.fase(0, |tx| q.enqueue_in(tx, &2));
        sh.fase(1, |tx| q.enqueue_in(tx, &3));
        let stats = sh.stats();
        assert_eq!(stats.fases, 3);
        // The stall drained {enq 1} as its own batch; {enq 2, enq 3}
        // completed the quorum and committed together.
        assert_eq!(stats.batches, 2, "stall split the batches");
        assert_eq!(stats.batched_fases, 3);
        sh.with(|h| assert_eq!(q.len(h), 3));
    }

    #[test]
    fn last_deregistering_worker_drains_the_pipeline() {
        // Worker 0 stages and leaves; worker 1 leaves without staging.
        // The moment no active worker remains, the staged batch must
        // commit — otherwise cleanly exiting workers would strand their
        // final (acknowledged) FASEs unfenced.
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.deregister(0);
        assert_eq!(sh.stats().batches, 0, "worker 1 still owes a FASE");
        sh.deregister(1);
        assert_eq!(sh.stats().batches, 1, "last deregister drains");
        sh.with(|h| assert_eq!(q.len(h), 1));
    }

    #[test]
    fn deregister_unblocks_partial_batch() {
        let sh = shared(3);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.fase(1, |tx| q.enqueue_in(tx, &2));
        // Worker 2 exits without staging: its deregistration completes
        // the quorum and the batch commits.
        sh.deregister(2);
        assert_eq!(sh.stats().batches, 1);
        sh.with(|h| assert_eq!(q.len(h), 2));
    }

    #[test]
    fn all_noop_batch_is_free() {
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let fences = sh.with(|h| h.nv().pm().stats().fences);
        for w in 0..2 {
            sh.fase(w, |tx| {
                assert!(q.dequeue_in(tx).is_none());
            });
        }
        sh.flush();
        let delta = sh.with(|h| h.nv().pm().stats().fences) - fences;
        assert_eq!(delta, 0, "empty-queue dequeues commit nothing");
        assert_eq!(sh.stats().batches, 0);
    }

    #[test]
    fn batched_commit_is_durable_and_recoverable() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        for w in 0..4u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &w);
                map.insert_in(tx, &w, &(w * 10));
            });
        }
        sh.quiesce();
        let img = sh.crash_image(CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(img);
        let map = DurableMap::<u64, u64>::open(&h2, 0);
        let q = DurableQueue::<u64>::open(&h2, 1);
        for w in 0..4u64 {
            assert_eq!(map.get(&h2, &w), Some(w * 10));
        }
        assert_eq!(q.len(&h2), 4);
    }

    #[test]
    fn crash_before_batch_commit_loses_whole_suffix_atomically() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        // One full committed batch...
        for w in 0..4u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &w);
                map.insert_in(tx, &w, &w);
            });
        }
        sh.quiesce();
        // ...then a partial batch that never commits.
        for w in 0..2u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &(100 + w));
                map.insert_in(tx, &(100 + w), &w);
            });
        }
        let img = sh.crash_image(CrashPolicy::PersistAll);
        let (h2, _) = ModHeap::open(img);
        let map = DurableMap::<u64, u64>::open(&h2, 0);
        let q = DurableQueue::<u64>::open(&h2, 1);
        assert_eq!(q.len(&h2), 4, "staged suffix gone");
        for w in 0..2u64 {
            assert!(map.get(&h2, &(100 + w)).is_none());
        }
        for w in 0..4u64 {
            assert_eq!(map.get(&h2, &w), Some(w), "committed batch intact");
        }
    }

    #[test]
    fn lanes_overlap_in_simulated_time() {
        // The same total work across 4 workers must finish in less
        // simulated wall time than the serial sum of the lanes.
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| h.nv_mut().pm_mut().reset_metrics());
        for i in 0..40u64 {
            sh.fase((i % 4) as usize, |tx| map.insert_in(tx, &i, &i));
        }
        sh.flush();
        let wall = sh.sim_wall_ns();
        let serial = sh.with(|h| h.nv().pm().clock().now_ns());
        assert!(wall > 0.0);
        // Pure PM churn with no app compute is drain-bandwidth-bound:
        // the shared WPQ caps the parallel win, and background drain
        // also speeds up the serial baseline. Lanes must still overlap
        // the staging work.
        assert!(
            wall < 0.8 * serial,
            "wall {wall:.0} ns should be well under serial {serial:.0} ns"
        );
    }

    #[test]
    fn batch_commit_overlaps_staging_with_drain() {
        // While workers 1..3 stage (compute + their own flushes), worker
        // 0's flushes drain in the background; the single batch fence
        // pays only the residual, so the lanes record real overlap.
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| h.nv_mut().pm_mut().reset_metrics());
        for round in 0..5u64 {
            for w in 0..4 {
                sh.fase(w, |tx| {
                    tx.nv_mut().pm_mut().charge_ns(500.0); // app compute
                    map.insert_in(tx, &(round * 4 + w as u64), &(w as u64));
                });
            }
        }
        sh.flush();
        let ratio = sh.overlap_ratio();
        assert!(
            ratio > 0.0,
            "pipelined staging must hide some drain work, got {ratio:.3}"
        );
        let lanes = sh.lane_stats();
        assert!(lanes.overlap_ns > 0.0);
        assert!(lanes.residual_stall_ns >= 0.0);
    }

    #[test]
    fn shared_heap_is_actually_shareable_across_threads() {
        let sh = shared(4);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let mut handles = Vec::new();
        for w in 0..4 {
            let sh = sh.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    sh.fase(w, |tx| q.enqueue_in(tx, &(w as u64 * 100 + i)));
                }
                sh.deregister(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sh.flush();
        sh.with(|h| assert_eq!(q.len(h), 100));
        // Unwrapping succeeds once the worker clones are gone.
        let mut heap = sh.into_heap();
        heap.quiesce();
        assert_eq!(heap.pending_reclaims(), 0);
    }
}
