//! `SharedModHeap`: a thread-safe, sharded front end with lock-free FASE
//! staging and pipelined (group) commits.
//!
//! MOD's whole point is that shadow updates need almost no ordering — so
//! staging them should need almost no *locking* either. Each worker
//! thread owns a full shard of the machinery: a private allocation arena
//! ([`mod_alloc::NvHeap::split_workers`]) and a private [`mod_pmem::Pmem`]
//! handle (own simulated clock, caches, line table and WPQ calendar) over
//! the shared pool storage. Building a FASE's shadows — the entire hot
//! path — therefore runs with **no global lock**: the only coordination
//! is per-root *staging lanes* (a FASE updating root `r` owns `r`'s lane
//! until it is queued, so dependent same-root FASEs serialize while
//! disjoint-root FASEs never meet), and completed FASEs are handed to the
//! commit stage through a **lock-free MPSC queue**
//! ([`crate::queue::HandoffQueue`]). Only the batch publish — one root
//! directory swing, one `sfence` — remains serialized, and it is exactly
//! one ordering point however many FASEs the batch carries.
//!
//! ```text
//!  worker 0 ──┐ stage in own arena/timeline ──┐
//!  worker 1 ──┤   (no lock; per-root lanes)   ├──▶ lock-free MPSC ──▶ commit stage
//!  worker N ──┘                               ┘      (push CAS)       one sfence +
//!                                                                     one ptr store
//! ```
//!
//! ## Commit modes
//!
//! * [`CommitMode::Pipelined`] (default) — never blocks: the batch
//!   publishes once every active worker has staged, and a worker that
//!   laps the pipeline force-drains it first. Deterministic under a
//!   [`crate::sched::SeededRoundRobin`] turnstile, which is what the
//!   crash-injection tests drive.
//! * [`CommitMode::Group`] — free-running OS threads *wait* for the
//!   batch instead of force-draining it: a worker that laps the pipeline
//!   blocks on a condvar until the open batch commits (because it filled
//!   to `max_batch`, because every active worker staged, or because
//!   `timeout` expired — which bounds worst-case FASE latency). This is
//!   the mode that keeps fences/FASE at `1/max_batch` under real
//!   concurrency instead of degrading to ~1.
//!
//! ## Semantics
//!
//! * Every FASE is individually failure-atomic: the batch publishes all
//!   of its FASEs with one pointer store, so a crash leaves each FASE
//!   entirely in or entirely out — never half-applied.
//! * FASEs updating the same root serialize in lane order and see each
//!   other's staged shadows (read-your-batch); FASEs over disjoint
//!   roots stage concurrently and merge at commit.
//! * Durability is *group-commit*: `fase` returns when the update is
//!   staged; it becomes durable at the batch's fence. A crash can drop a
//!   staged-but-unpublished suffix — each FASE still all-or-nothing.
//!   [`SharedModHeap::flush`] forces a partial batch out.
//!
//! Determinism: `SharedModHeap` is `Send + Sync` and safe under any
//! interleaving; driving the workers through a seeded turnstile makes
//! runs bit-for-bit reproducible (the concurrent crash tests do exactly
//! that — merges happen in handoff-queue order, which the turnstile
//! fixes).
//!
//! ## Lock ordering and poison policy
//!
//! The lock hierarchy is `global` (commit) → per-shard → `group` (batch
//! metadata) → `subscribers`: a lock may only be acquired while holding
//! locks strictly *earlier* in that list. Every blocking wait respects
//! it — [`SharedModHeap::wait_durable`]'s bounded-wait fallback and the
//! group-commit lap wait both **drop the group lock before** calling
//! into `flush()`/`commit_now()` (which take `global`), so a reader
//! thread forcing a batch out can never invert the commit stage's
//! `global → group` order, and the group condvar's waiters park holding
//! only `group`. Snapshot readers ([`SharedModHeap::snapshot`]) sit
//! entirely *outside* the hierarchy: pinning is two atomic stores in
//! the [`EpochRegistry`] plus one pointer load, so a view can be taken
//! and traversed while any (or all) of the locks above are held by
//! other threads — the commit stage coordinates with readers only
//! through the epoch gate on reclamation, never through a lock.
//!
//! Poisoning is handled per lock, by what a panic unwinding through it
//! can leave behind:
//!
//! * **shard / group / subscriber mutexes** — consistent at every
//!   unlock (a panicking FASE runs `abort_fase` before the unwind
//!   releases its shard; `GroupMeta` and the subscriber list are plain
//!   values). These recover silently via [`PoisonError::into_inner`]
//!   (`relock`), so one panicking worker never cascades into failures
//!   on every other server connection.
//! * **the global commit lock** — guards the multi-step batch merge in
//!   `commit_locked`; a panic there can strand a half-applied batch, so
//!   poison is surfaced as a typed [`HeapPoisoned`] /
//!   [`EngineError::Poisoned`] on the `try_*` APIs and the pool must be
//!   reopened (journal replay recovers to the last published batch).

use crate::erased::ErasedDs;
use crate::fase::{Fase, LaneConflict, PendingUpdate, RootLanes};
use crate::heap::ModHeap;
use crate::queue::HandoffQueue;
use crate::snapshot::{DirSnapshot, SnapshotView};
use mod_alloc::{EpochRegistry, NvHeap, RecoveryReport, StagedAllocEffects};
use mod_pmem::{CrashPolicy, LineHandoff, PmStats, Pmem, TraceEvent};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// When the pipelined commit stage publishes a batch (see module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// Publish when every active worker has staged; a worker lapping the
    /// pipeline force-drains it. Never blocks (turnstile-friendly).
    Pipelined,
    /// Blocking group commit: a lapping worker waits for the open batch,
    /// which publishes at `max_batch` FASEs, when every active worker
    /// staged, or after `timeout` — whichever comes first.
    Group {
        /// Batch size that triggers an immediate publish.
        max_batch: usize,
        /// Upper bound on how long a staged FASE waits for its fence.
        timeout: Duration,
    },
}

/// Pipeline counters (volatile, observability only). Snapshots are taken
/// lock-free from per-counter atomics — reading them never perturbs the
/// staging hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// FASEs staged through [`SharedModHeap::fase`].
    pub fases: u64,
    /// Batches committed (each cost exactly one ordering point).
    pub batches: u64,
    /// FASEs carried by those batches (≤ `fases`: all-no-op batches
    /// commit nothing and are free).
    pub batched_fases: u64,
    /// Largest batch committed so far.
    pub max_batch: usize,
    /// Staging attempts aborted on a discordant lane order and retried
    /// after backoff (every conflict eventually committed or surfaced as
    /// a [`LaneContention`] — this counter is the livelock-freedom
    /// witness the discordant-lock-order tests assert on).
    pub lane_conflicts: u64,
    /// Flush-set entries combined away when member FASEs' line tables
    /// merged into a batch: the line table is keyed by address, so a
    /// merged batch holds one entry per unique dirty line and its
    /// covering fence issues exactly one effective `clwb` per line, no
    /// matter how many FASEs touched it. Each unit here is a `clwb` the
    /// batch did not pay.
    pub coalesced_lines: u64,
}

#[derive(Debug, Default)]
struct AtomicPipelineStats {
    fases: AtomicU64,
    batches: AtomicU64,
    batched_fases: AtomicU64,
    max_batch: AtomicUsize,
    lane_conflicts: AtomicU64,
    coalesced_lines: AtomicU64,
}

impl AtomicPipelineStats {
    fn snapshot(&self) -> PipelineStats {
        PipelineStats {
            fases: self.fases.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            batched_fases: self.batched_fases.load(Ordering::SeqCst),
            max_batch: self.max_batch.load(Ordering::SeqCst),
            lane_conflicts: self.lane_conflicts.load(Ordering::SeqCst),
            coalesced_lines: self.coalesced_lines.load(Ordering::SeqCst),
        }
    }
}

/// Typed staging failure: a FASE's lane acquisitions kept colliding with
/// discordant lock orders until the bounded retry budget ran out. The
/// staged work was rolled back each time — the heap is unchanged, and
/// the FASE can be resubmitted (the contending FASEs hold lanes only
/// while staging, so persistent contention means a peer is stalled
/// inside its closure, not livelock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneContention {
    /// The worker whose FASE gave up.
    pub worker: usize,
    /// Staging attempts made (each aborted by a lane conflict).
    pub attempts: u32,
}

impl std::fmt::Display for LaneContention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {}: FASE aborted by lane conflicts {} times (bounded backoff exhausted)",
            self.worker, self.attempts
        )
    }
}

impl std::error::Error for LaneContention {}

/// The commit machinery is wedged: a thread panicked while holding the
/// **global commit lock** (mid-`commit_locked`), so the single-owner
/// heap may hold a half-merged batch. Unlike the shard/group/subscriber
/// mutexes — whose state is consistent whenever a panic unwinds through
/// them, and which this module recovers silently (see the module docs'
/// poison policy) — the global lock guards multi-step merge state, so
/// its poison is surfaced as this typed error instead of being relocked.
/// Durable state is safe: reopening the pool replays the journal to the
/// last *published* batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapPoisoned;

impl std::fmt::Display for HeapPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared heap poisoned: a thread panicked mid-commit; reopen the pool to recover"
        )
    }
}

impl std::error::Error for HeapPoisoned {}

/// Typed failure surface of the server-facing staging APIs
/// ([`SharedModHeap::try_fase`], [`SharedModHeap::try_fase_ticketed`]).
/// Splitting the two cases matters to a front end: contention is
/// per-request and retryable, poison is engine-fatal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Bounded lane-conflict retry budget exhausted. The heap is
    /// unchanged; the FASE can be resubmitted.
    Contention(LaneContention),
    /// The commit machinery is poisoned; see [`HeapPoisoned`]. Further
    /// staging on this handle will keep failing — reopen the pool.
    Poisoned(HeapPoisoned),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Contention(e) => e.fmt(f),
            EngineError::Poisoned(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Contention(e) => Some(e),
            EngineError::Poisoned(e) => Some(e),
        }
    }
}

impl From<LaneContention> for EngineError {
    fn from(e: LaneContention) -> EngineError {
        EngineError::Contention(e)
    }
}

impl From<HeapPoisoned> for EngineError {
    fn from(e: HeapPoisoned) -> EngineError {
        EngineError::Poisoned(e)
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Only correct for locks whose invariants hold at every unlock — the
/// shard, group-metadata and subscriber mutexes here (see the module
/// docs' poison policy). The global commit lock must NOT go through
/// this: its poison means a half-merged batch and is surfaced as
/// [`HeapPoisoned`] instead.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded retry budget for conflict-aborted FASEs (see
/// [`SharedModHeap::try_fase`]). With the exponential backoff below the
/// whole budget is ~50 ms of sleep — far beyond any scheduling hiccup
/// (a lane holder descheduled on a loaded host), so exhausting it means
/// a peer is genuinely parked inside its closure, not livelock.
const CONFLICT_RETRY_CAP: u32 = 32;

/// Exponential backoff between conflict retries: yield for the first few
/// attempts, then sleep `2^attempt` µs capped at ~2 ms. Bounded and
/// monotone, so two discordant FASEs cannot re-collide forever — one of
/// them always gets a full lane-hold window.
fn conflict_backoff(attempt: u32) {
    if attempt < 3 {
        std::thread::yield_now();
    } else {
        let micros = 1u64 << attempt.min(11);
        std::thread::sleep(Duration::from_micros(micros));
    }
}

/// Shared durability state behind a [`CommitTicket`].
#[derive(Debug, Default)]
struct TicketState {
    /// Set (after the batch's `sfence`) by the commit stage.
    durable: AtomicBool,
    /// Simulated time of the fence that made this FASE durable (f64
    /// bits; valid once `durable` is set).
    fence_ns: AtomicU64,
}

/// A durability handle for one staged FASE.
///
/// [`SharedModHeap::fase_ticketed`] returns one per FASE: the ticket
/// turns *durable* the moment the batch carrying the FASE publishes —
/// i.e. strictly after the batch's `sfence` has executed. This is the
/// primitive a network front end needs for **reply-after-fence**
/// semantics: a response may be flushed to the client only once the
/// ticket of the FASE that produced it is durable, so an acknowledged
/// operation is guaranteed to survive a crash.
///
/// Tickets are cheap (`Arc`-backed), cloneable, and safe to poll from
/// any thread; [`SharedModHeap::wait_durable`] blocks on one (bounded by
/// the group-commit timeout — it forces the batch out rather than wait
/// forever).
#[derive(Clone, Debug)]
pub struct CommitTicket {
    state: Arc<TicketState>,
}

impl CommitTicket {
    fn new() -> CommitTicket {
        CommitTicket {
            state: Arc::new(TicketState::default()),
        }
    }

    /// Whether the FASE's batch has published (its fence has executed).
    pub fn is_durable(&self) -> bool {
        self.state.durable.load(Ordering::SeqCst)
    }

    /// Simulated time of the fence that committed this FASE, once
    /// durable (`None` before that).
    pub fn fence_ns(&self) -> Option<f64> {
        self.is_durable()
            .then(|| f64::from_bits(self.state.fence_ns.load(Ordering::SeqCst)))
    }
}

/// What a commit subscriber learns about one published batch (see
/// [`SharedModHeap::subscribe_commits`]).
#[derive(Clone, Debug)]
pub struct CommitNotice {
    /// Monotone batch sequence number (1 for the first drained batch).
    pub batch_seq: u64,
    /// FASEs the batch carried (including staged no-ops).
    pub fases: usize,
    /// Whether the batch actually published updates (an all-no-op batch
    /// drains participants but pays no fence).
    pub committed: bool,
    /// The batch's fence watermark: simulated time after which every
    /// FASE in this batch (and all earlier batches) is durable.
    pub fence_ns: f64,
}

type CommitSubscriber = Box<dyn Fn(&CommitNotice) + Send + Sync>;

/// Registered commit subscribers (manual `Debug`: closures aren't).
#[derive(Default)]
struct Subscribers(Mutex<Vec<CommitSubscriber>>);

impl std::fmt::Debug for Subscribers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.0.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "Subscribers({n})")
    }
}

/// One staged FASE in transit from a worker shard to the commit stage.
#[derive(Debug)]
struct StagedFase {
    worker: usize,
    /// Durability notification slot, if the submitter asked for one.
    ticket: Option<Arc<TicketState>>,
    pending: Vec<PendingUpdate>,
    /// Reverted chains whose release was deferred to the commit stage.
    releases: Vec<ErasedDs>,
    /// Allocator side effects (refcount authority, deltas, frees).
    effects: StagedAllocEffects,
    /// PM line states (and drain watermark) the batch fence must cover.
    lines: LineHandoff,
    trace: Vec<TraceEvent>,
    /// The worker's lane clock when staging finished (fence start bound).
    stage_end_ns: f64,
}

/// One worker's checked-out shard: its worker-mode heap (arena + PM
/// handle). Behind a per-shard mutex that only its own worker takes on
/// the hot path (reporters peek briefly), so it is uncontended.
#[derive(Debug)]
struct WorkerCtx {
    nv: NvHeap,
}

/// One committed batch's superseded version chains, parked until the
/// **epoch gate** opens: no snapshot reader pinned at an epoch ≤
/// `retire_epoch` (the epoch of the last snapshot that can still reach
/// these chains). Once clear, the chains return to the single-owner
/// deferral queue and are freed by the next `fence_and_drain` — which
/// also preserves the crash-safety rule (never free a superseded chain
/// before a fence covers the swing that superseded it) *and* keeps the
/// charge location of the frees identical to the pre-snapshot code.
#[derive(Debug)]
struct RetiredBatch {
    retire_epoch: u64,
    versions: Vec<ErasedDs>,
}

#[derive(Debug)]
struct GlobalState {
    heap: ModHeap,
    /// Superseded version chains awaiting epoch-gated reclamation.
    limbo: Vec<RetiredBatch>,
    /// Superseded snapshot images: readers pinned at their epoch may
    /// still hold pointers into them, so they wait out the epoch gate
    /// like version chains (no fence gate — they are volatile). The
    /// `Box` is load-bearing: a pinned reader's `&DirSnapshot` points
    /// at the heap allocation `SnapPtr::swap` recovered, so the image
    /// must keep that address — unboxing into the `Vec` would move it.
    #[allow(clippy::vec_box)]
    old_snaps: Vec<Box<DirSnapshot>>,
}

/// Owner of the currently published [`DirSnapshot`]: readers load the
/// pointer with no lock; the commit stage swings it under the commit
/// lock. A dedicated newtype with its own `Drop` rather than a `Drop`
/// impl on `Inner`, because [`SharedModHeap::into_heap`] partially
/// moves `Inner`'s fields — which a `Drop` on `Inner` would forbid.
struct SnapPtr(AtomicPtr<DirSnapshot>);

impl SnapPtr {
    fn new(snap: Box<DirSnapshot>) -> SnapPtr {
        SnapPtr(AtomicPtr::new(Box::into_raw(snap)))
    }

    fn load(&self) -> *const DirSnapshot {
        self.0.load(Ordering::SeqCst)
    }

    /// Publishes `snap` (one atomic pointer swing) and returns the
    /// superseded image, which the caller must keep alive until no
    /// reader is pinned at its epoch.
    fn swap(&self, snap: Box<DirSnapshot>) -> Box<DirSnapshot> {
        let old = self.0.swap(Box::into_raw(snap), Ordering::SeqCst);
        // SAFETY: every pointer stored here came from `Box::into_raw`,
        // and each is recovered exactly once — `swap` runs only under
        // the commit lock, and `Drop` has `&mut self`.
        unsafe { Box::from_raw(old) }
    }
}

impl Drop for SnapPtr {
    fn drop(&mut self) {
        // SAFETY: sole owner at drop time; any `SnapshotView` borrows
        // the `SharedModHeap` handle, so none can outlive `Inner`.
        drop(unsafe { Box::from_raw(*self.0.get_mut()) });
    }
}

impl std::fmt::Debug for SnapPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapPtr({:p})", self.0.load(Ordering::Relaxed))
    }
}

/// Test-only hook run inside `commit_locked` between the directory
/// swing and the snapshot publication (manual `Debug`: closures
/// aren't).
#[cfg(test)]
#[derive(Default)]
struct MidCommitHook(Mutex<Option<Box<dyn Fn() + Send + Sync>>>);

#[cfg(test)]
impl std::fmt::Debug for MidCommitHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MidCommitHook")
    }
}

#[derive(Debug)]
struct GroupMeta {
    /// When the oldest FASE of the open batch was staged.
    opened_at: Option<Instant>,
    /// Batches drained so far — mutex-protected so condvar waiters can
    /// use it as a wake predicate with no missed-notify window.
    batch_epoch: u64,
}

#[derive(Debug)]
struct Inner {
    global: Mutex<GlobalState>,
    shards: Vec<Mutex<WorkerCtx>>,
    lanes: RootLanes,
    queue: HandoffQueue<StagedFase>,
    mode: CommitMode,
    active: Vec<AtomicBool>,
    staged: Vec<AtomicBool>,
    /// FASEs pushed but not yet drained by a commit.
    queued: AtomicUsize,
    stats: AtomicPipelineStats,
    /// Simulated end time of the latest batch fence (f64 bits); workers
    /// sync their lane clocks to it lazily.
    last_fence_ns: AtomicU64,
    group: Mutex<GroupMeta>,
    group_cv: Condvar,
    /// Monotone drained-batch counter (the `batch_seq` in notices).
    batch_seq: AtomicU64,
    subscribers: Subscribers,
    /// The currently published snapshot (readers load it lock-free).
    snap: SnapPtr,
    /// Snapshot reader registry: pin/unpin slots + the published epoch.
    registry: EpochRegistry,
    /// Read-only heap view for snapshot traversals: shares the pool
    /// storage with every shard, owns only private volatile sim state,
    /// and is never mutated (readers use `&self` peek paths only).
    read_nv: NvHeap,
    #[cfg(test)]
    mid_commit_hook: MidCommitHook,
}

impl Inner {
    fn all_active_staged(&self) -> bool {
        let any = (0..self.shards.len()).any(|w| self.staged[w].load(Ordering::SeqCst));
        any && (0..self.shards.len()).all(|w| {
            !self.active[w].load(Ordering::SeqCst) || self.staged[w].load(Ordering::SeqCst)
        })
    }

    /// Drains the handoff queue and publishes everything as one batch
    /// with one ordering point. Must be called with `st` locked.
    fn commit_locked(&self, st: &mut GlobalState) {
        let drained = self.queue.drain();
        if drained.is_empty() {
            return;
        }
        // The fence is a shared event: it starts once the slowest
        // participant finished staging.
        let t0 = drained
            .iter()
            .map(|sf| sf.stage_end_ns)
            .fold(st.heap.nv().pm().clock().now_ns(), f64::max);
        st.heap.nv_mut().pm_mut().sync_clock_to(t0);
        let mut batch: Vec<PendingUpdate> = Vec::new();
        let mut releases = Vec::new();
        let mut participants = Vec::with_capacity(drained.len());
        let mut tickets = Vec::new();
        // Merging the members' flush sets into the owner's line table
        // combines duplicate lines (the table is keyed by address), so
        // the batch's covering fence issues exactly one effective `clwb`
        // per unique dirty line across all member FASEs. `coalesced` is
        // the count of cross-FASE duplicates the merge eliminated.
        let mut coalesced = 0u64;
        for sf in drained {
            participants.push(sf.worker);
            tickets.extend(sf.ticket);
            st.heap.nv_mut().apply_staged_effects(sf.effects);
            {
                let pm = st.heap.nv_mut().pm_mut();
                coalesced += pm.absorb_lines(sf.lines) as u64;
                pm.append_trace(sf.trace);
            }
            merge(&mut batch, sf.pending);
            releases.extend(sf.releases);
        }
        if coalesced > 0 {
            self.stats
                .coalesced_lines
                .fetch_add(coalesced, Ordering::SeqCst);
        }
        let fases = participants.len();
        let committed = !batch.is_empty();
        if committed {
            // Epoch-clear limbo chains go back onto the deferral queue
            // *now*, so the fence inside `commit_fase` frees them at
            // exactly the point the pre-snapshot code always did — with
            // no reader pinned, commit timing (and the gated simulated-
            // latency metrics) is bit-identical to the old path.
            self.reinject_unpinned(st);
        }
        st.heap.commit_fase(batch);
        if committed {
            // Steal the chains this batch superseded out of the heap's
            // deferral queue before any later fence can free them — a
            // reader pinned at the pre-batch epoch may still be
            // traversing them through its snapshot.
            let versions = st.heap.take_pending();
            if !versions.is_empty() {
                st.limbo.push(RetiredBatch {
                    retire_epoch: self.registry.current(),
                    versions,
                });
            }
        }
        // Deferred revert chains were never published: reclaim now that
        // their refcount authority has arrived.
        for r in releases {
            r.release(st.heap.nv_mut());
        }
        // `commit_fase` flushes the directory swing but does not fence
        // it — in the closed-loop pipeline the *next* batch's fence
        // covers it (epsilon-durability, one fence per FASE preserved).
        // A ticket is a promise to an external client, and a reply must
        // imply the swing itself is durable, so a batch carrying tickets
        // pays the covering fence now. Ticket-free batches are untouched:
        // the simulated fence counts of every existing workload are
        // bit-identical.
        if committed && !tickets.is_empty() {
            // With no reader pinned, this batch's own chains (stolen
            // above) come straight back and the covering fence frees
            // them — matching the old path, which drained them here.
            self.reinject_unpinned(st);
            st.heap.fence_and_drain();
        }
        if committed {
            self.stats.batches.fetch_add(1, Ordering::SeqCst);
            self.stats
                .batched_fases
                .fetch_add(fases as u64, Ordering::SeqCst);
            self.stats.max_batch.fetch_max(fases, Ordering::SeqCst);
            self.last_fence_ns.store(
                st.heap.nv().pm().clock().now_ns().to_bits(),
                Ordering::SeqCst,
            );
        }
        // Mid-commit test hook: observes the window where the directory
        // has swung but the new snapshot has not yet published.
        #[cfg(test)]
        if let Some(hook) = relock(&self.mid_commit_hook.0).as_ref() {
            hook();
        }
        if committed {
            // Publish the batch's snapshot *before* resolving tickets:
            // once a client learns its write is durable, any snapshot
            // taken afterwards must already contain that write.
            self.publish_snapshot(st);
        }
        // The batch's fence watermark. An all-no-op batch paid no fence,
        // but its FASEs wrote nothing — they are trivially durable, so
        // their tickets resolve too (a read-only request must not wait
        // for a write that never happened).
        let fence_ns = st.heap.nv().pm().clock().now_ns();
        // Reply-after-fence gate: tickets flip durable strictly *after*
        // `commit_fase` ran the batch's sfence + directory swing above.
        for t in &tickets {
            t.fence_ns.store(fence_ns.to_bits(), Ordering::SeqCst);
            t.durable.store(true, Ordering::SeqCst);
        }
        let batch_seq = self.batch_seq.fetch_add(1, Ordering::SeqCst) + 1;
        for w in participants {
            self.staged[w].store(false, Ordering::SeqCst);
        }
        self.queued.fetch_sub(fases, Ordering::SeqCst);
        {
            // A new FASE may have raced in between the drain and here:
            // the open-time must survive (the Group timeout bound relies
            // on it), so clear it only when the queue really emptied and
            // (re)stamp it when it did not.
            let mut g = relock(&self.group);
            if self.queued.load(Ordering::SeqCst) == 0 {
                g.opened_at = None;
            } else if g.opened_at.is_none() {
                g.opened_at = Some(Instant::now());
            }
            // Publish the epoch and notify while *holding* the mutex.
            // The old code notified after dropping it, which left the
            // wakeup's delivery ordering resting on the accident that
            // this block takes the same lock the waiters hold between
            // their predicate check and `wait_timeout` — correct today,
            // but one refactor away from a classic missed-notify. With
            // the epoch bump + notify inside the lock, every waiter
            // either sees the new epoch before sleeping or is already
            // parked in `wait_timeout` and receives the notification.
            g.batch_epoch += 1;
            self.group_cv.notify_all();
        }
        // Commit subscribers run outside the group lock (waiters are
        // already released) but still under the commit lock, so notices
        // arrive in batch order with monotone fence watermarks.
        let notice = CommitNotice {
            batch_seq,
            fases,
            committed,
            fence_ns,
        };
        for sub in relock(&self.subscribers.0).iter() {
            sub(&notice);
        }
    }

    /// Publishes the current root directory as the next epoch's
    /// [`DirSnapshot`] — one atomic pointer swing, piggybacked on the
    /// directory swing the batch already paid for — then runs a
    /// reclamation pass. Must be called with `st` locked.
    ///
    /// Publication order is load-bearing: the pointer swings *before*
    /// the registry's epoch advances, so the published image's epoch is
    /// always ≥ the counter a reader pins against (a reader pinned at
    /// `e` can only ever load a snapshot of epoch ≥ `e`, which the
    /// epoch gate then keeps alive for it).
    fn publish_snapshot(&self, st: &mut GlobalState) {
        let epoch = self.registry.current() + 1;
        // Hybrid roots publish their *logical* volatile head (from the
        // annex, set by `commit_fase` just before this) instead of the
        // durable spine record: snapshot readers traverse the live
        // index, never the op log. The superseded volatile versions sit
        // in limbo under the same epoch guard as persistent chains.
        let annex = st.heap.nv().annex().clone();
        let roots = crate::root::all_entries(st.heap.nv())
            .into_iter()
            .enumerate()
            .map(|(i, e)| match (e.kind, annex.get(i)) {
                (crate::erased::RootKind::Spine, w) if w != 0 => {
                    let (kind, addr) = crate::spine::unpack_annex(w);
                    ErasedDs {
                        kind,
                        root: mod_pmem::PmPtr::from_addr(addr),
                    }
                }
                _ => e,
            })
            .collect();
        let old = self.snap.swap(Box::new(DirSnapshot { epoch, roots }));
        st.old_snaps.push(old);
        self.registry.advance();
        self.prune_old_snaps(st);
    }

    /// Moves every epoch-clear limbo batch back onto the single-owner
    /// deferral queue, in retirement order: a batch's chains are clear
    /// once the oldest pinned epoch is strictly newer than their
    /// `retire_epoch`. The next `fence_and_drain` then frees them —
    /// after a fence, as crash safety demands, and (when no reader was
    /// ever pinned) at the exact charge point of the pre-snapshot code.
    /// Must be called with `st` locked.
    fn reinject_unpinned(&self, st: &mut GlobalState) {
        let min = self.registry.min_pinned();
        for b in std::mem::take(&mut st.limbo) {
            if min > b.retire_epoch {
                for v in b.versions {
                    st.heap.defer_release(v);
                }
            } else {
                st.limbo.push(b);
            }
        }
    }

    /// Drops superseded snapshot images no reader can still hold (pure
    /// volatile boxes — freeing them charges no simulated time, so this
    /// is safe anywhere in the commit path). Must be called with `st`
    /// locked.
    fn prune_old_snaps(&self, st: &mut GlobalState) {
        let min = self.registry.min_pinned();
        st.old_snaps.retain(|s| s.epoch >= min);
    }
}

/// Merges one FASE's staged updates into the batch: chains on the
/// existing per-root heads (which the FASE already saw through its
/// staging lane), turning superseded heads into intra-batch
/// intermediates.
fn merge(batch: &mut Vec<PendingUpdate>, pending: Vec<PendingUpdate>) {
    for p in pending {
        match batch.iter_mut().find(|e| e.index == p.index) {
            Some(entry) => {
                debug_assert_eq!(entry.kind, p.kind, "batch kind drift");
                let old_head = ErasedDs {
                    kind: entry.kind,
                    root: entry.new,
                };
                entry.intermediates.push(old_head);
                // A hybrid root's superseded volatile head is an
                // intra-batch intermediate too: only the final head gets
                // published to the annex at commit.
                if let Some(old_h) = entry.hybrid.take() {
                    entry.intermediates.push(ErasedDs {
                        kind: old_h.logical,
                        root: mod_pmem::PmPtr::from_addr(old_h.new_v),
                    });
                }
                entry.intermediates.extend(p.intermediates);
                entry.new = p.new;
                entry.hybrid = p.hybrid;
            }
            None => batch.push(p),
        }
    }
}

/// A thread-safe, sharded MOD heap with lock-free staging and pipelined
/// FASE commits (see the module docs). Cheap to clone; all clones share
/// one heap.
#[derive(Clone, Debug)]
pub struct SharedModHeap {
    inner: Arc<Inner>,
}

// `SharedModHeap` must stay shareable across worker threads; this is the
// crate's Send/Sync audit point for the whole `PmPtr`-holding tower
// (Pmem → NvHeap → ModHeap) plus the lock-free handoff queue.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<SharedModHeap>();
    assert_send::<ModHeap>();
    assert_send::<crate::erased::ErasedDs>();
    assert_send_sync::<HandoffQueue<StagedFase>>();
    // Snapshot machinery: `Inner` holds the read-only `NvHeap` *bare*
    // (readers on many threads traverse it through `&`), so `NvHeap`
    // must be `Sync` — its interior mutability is confined to the
    // word-atomic shared arena. The registry is all atomics.
    assert_send_sync::<NvHeap>();
    assert_send_sync::<EpochRegistry>();
    assert_send_sync::<crate::snapshot::DirSnapshot>();
    // Typed handles cross thread boundaries by value in the workers.
    assert_send_sync::<crate::Root<mod_funcds::PmMap>>();
    assert_send_sync::<crate::DurableMap<String, Vec<u8>>>();
    assert_send_sync::<crate::DurableSet<u64>>();
    assert_send_sync::<crate::DurableVector<u64>>();
    assert_send_sync::<crate::DurableStack<u64>>();
    assert_send_sync::<crate::DurableQueue<u64>>();
    assert_send_sync::<crate::sched::SeededRoundRobin>();
};

impl SharedModHeap {
    /// Formats a fresh pool into a shared heap with one shard (arena +
    /// PM handle) per worker, in [`CommitMode::Pipelined`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the pool is too small to shard.
    pub fn create(pm: Pmem, workers: usize) -> SharedModHeap {
        SharedModHeap::from_heap(ModHeap::create(pm), workers)
    }

    /// [`SharedModHeap::create`] with an explicit [`CommitMode`].
    pub fn create_with(pm: Pmem, workers: usize, mode: CommitMode) -> SharedModHeap {
        SharedModHeap::from_heap_with(ModHeap::create(pm), workers, mode)
    }

    /// Wraps an existing single-owner heap (e.g. one that just finished
    /// recovery), sharding it for `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, the heap is already split, or the
    /// remaining pool space is too small to shard.
    pub fn from_heap(heap: ModHeap, workers: usize) -> SharedModHeap {
        SharedModHeap::from_heap_with(heap, workers, CommitMode::Pipelined)
    }

    /// [`SharedModHeap::from_heap`] with an explicit [`CommitMode`].
    pub fn from_heap_with(mut heap: ModHeap, workers: usize, mode: CommitMode) -> SharedModHeap {
        if let CommitMode::Group { max_batch, .. } = mode {
            assert!(max_batch > 0, "group commit needs max_batch >= 1");
        }
        let worker_heaps = heap.nv_mut().split_workers(workers);
        let read_nv = heap.nv().read_view();
        // Epoch 0: the pre-first-commit image (whatever roots the heap
        // already holds, e.g. after recovery).
        let snap = SnapPtr::new(Box::new(DirSnapshot {
            epoch: 0,
            roots: crate::root::all_entries(heap.nv()),
        }));
        SharedModHeap {
            inner: Arc::new(Inner {
                global: Mutex::new(GlobalState {
                    heap,
                    limbo: Vec::new(),
                    old_snaps: Vec::new(),
                }),
                shards: worker_heaps
                    .into_iter()
                    .map(|nv| Mutex::new(WorkerCtx { nv }))
                    .collect(),
                lanes: RootLanes::new(),
                queue: HandoffQueue::new(),
                mode,
                active: (0..workers).map(|_| AtomicBool::new(true)).collect(),
                staged: (0..workers).map(|_| AtomicBool::new(false)).collect(),
                queued: AtomicUsize::new(0),
                stats: AtomicPipelineStats::default(),
                last_fence_ns: AtomicU64::new(0f64.to_bits()),
                group: Mutex::new(GroupMeta {
                    opened_at: None,
                    batch_epoch: 0,
                }),
                group_cv: Condvar::new(),
                batch_seq: AtomicU64::new(0),
                subscribers: Subscribers::default(),
                snap,
                registry: EpochRegistry::new(),
                read_nv,
                #[cfg(test)]
                mid_commit_hook: MidCommitHook::default(),
            }),
        }
    }

    /// Opens a (possibly crashed) pool, recovers it, and shards it for
    /// `workers` worker threads.
    pub fn open(pm: Pmem, workers: usize) -> (SharedModHeap, RecoveryReport) {
        let (heap, report) = ModHeap::open(pm);
        (SharedModHeap::from_heap(heap, workers), report)
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// The configured commit mode.
    pub fn mode(&self) -> CommitMode {
        self.inner.mode
    }

    /// Runs a FASE on behalf of `worker`, staging its updates with **no
    /// global lock**: shadows build in the worker's own arena/timeline,
    /// same-root FASEs serialize on per-root staging lanes, and the
    /// finished FASE enters the lock-free commit queue. The batch
    /// publishes — one `sfence`, one pointer store — per the configured
    /// [`CommitMode`]. If `worker` already has a FASE in the open batch,
    /// [`CommitMode::Pipelined`] force-drains the batch first while
    /// [`CommitMode::Group`] waits for it (bounded by its `timeout`).
    ///
    /// The closure may run more than once: if two FASEs race to lane
    /// ownership of overlapping root sets in conflicting order, one
    /// aborts (its allocations roll back) and retries. Closures are pure
    /// update stagings, so a retry is invisible apart from the sim-time
    /// charge.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or deregistered, if lane
    /// contention exhausts the bounded retry budget, or if the commit
    /// machinery is poisoned (see [`SharedModHeap::try_fase`] for the
    /// non-panicking form).
    pub fn fase<R>(&self, worker: usize, f: impl FnMut(&mut Fase<'_>) -> R) -> R {
        match self.try_fase(worker, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}; use try_fase to handle it"),
        }
    }

    /// [`SharedModHeap::fase`], surfacing lane contention as a typed
    /// error instead of retrying forever: a staging attempt that loses a
    /// discordant lane-order race aborts (its allocations roll back),
    /// backs off exponentially (bounded — yields, then sleeps up to
    /// ~2 ms) and retries, up to a fixed retry cap. Exhausting the cap
    /// returns [`LaneContention`] with the heap unchanged; every abort
    /// increments [`PipelineStats::lane_conflicts`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Contention`] if every staging attempt in
    /// the budget was aborted by conflicting lane orders (the heap is
    /// unchanged; resubmit), or [`EngineError::Poisoned`] if a thread
    /// panicked mid-commit and wedged the commit machinery (engine-
    /// fatal; reopen the pool). In the poisoned case the FASE may be
    /// staged but unpublished — exactly like a crash before the fence,
    /// it is all-or-nothing lost unless a later commit succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or deregistered.
    pub fn try_fase<R>(
        &self,
        worker: usize,
        f: impl FnMut(&mut Fase<'_>) -> R,
    ) -> Result<R, EngineError> {
        self.try_fase_inner(worker, f, None)
    }

    /// [`SharedModHeap::fase`] returning a [`CommitTicket`] alongside the
    /// closure's result: the ticket turns durable once the batch carrying
    /// this FASE has published (its fence has executed). This is the
    /// building block for reply-after-fence front ends — acknowledge the
    /// operation to the client only after
    /// [`SharedModHeap::wait_durable`] on the ticket returns.
    ///
    /// # Panics
    ///
    /// Same contract as [`SharedModHeap::fase`].
    pub fn fase_ticketed<R>(
        &self,
        worker: usize,
        f: impl FnMut(&mut Fase<'_>) -> R,
    ) -> (R, CommitTicket) {
        match self.try_fase_ticketed(worker, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}; use try_fase_ticketed to handle it"),
        }
    }

    /// [`SharedModHeap::fase_ticketed`], surfacing lane contention and
    /// commit-machinery poison as typed errors (see
    /// [`SharedModHeap::try_fase`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Contention`] if every staging attempt in
    /// the budget was aborted by conflicting lane orders (no ticket
    /// exists then — nothing was staged), or [`EngineError::Poisoned`]
    /// if the commit machinery is wedged.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or deregistered.
    pub fn try_fase_ticketed<R>(
        &self,
        worker: usize,
        f: impl FnMut(&mut Fase<'_>) -> R,
    ) -> Result<(R, CommitTicket), EngineError> {
        let ticket = CommitTicket::new();
        self.try_fase_inner(worker, f, Some(Arc::clone(&ticket.state)))
            .map(|out| (out, ticket))
    }

    fn try_fase_inner<R>(
        &self,
        worker: usize,
        mut f: impl FnMut(&mut Fase<'_>) -> R,
        ticket: Option<Arc<TicketState>>,
    ) -> Result<R, EngineError> {
        let inner = &*self.inner;
        assert!(worker < inner.shards.len(), "worker {worker} out of range");
        assert!(
            inner.active[worker].load(Ordering::SeqCst),
            "worker {worker} deregistered"
        );
        if inner.staged[worker].load(Ordering::SeqCst) {
            // This worker outpaced the batch.
            match inner.mode {
                CommitMode::Pipelined => self.commit_now()?,
                CommitMode::Group { timeout, .. } => self.wait_for_batch(worker, timeout)?,
            }
        }
        // The shard mutex is safe to relock after a poison: a panicking
        // FASE runs `abort_fase` before its unwind releases the guard.
        let mut ctx = relock(&inner.shards[worker]);
        // Catch up with the latest batch fence (a shared event).
        let fence = f64::from_bits(inner.last_fence_ns.load(Ordering::SeqCst));
        ctx.nv.pm_mut().sync_clock_to(fence);
        // Stage with conflict-abort retry (see `Fase::hold_lane`). The
        // whole attempt — run the closure, publish the new lane heads,
        // hand the FASE to the commit queue, release the lanes — happens
        // with the lane guards held, so queue order respects per-root
        // chaining order.
        let mut attempts = 0u32;
        let out = loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut tx = Fase::worker(&mut ctx.nv, &inner.lanes);
                let out = f(&mut tx);
                let effects = tx.nv_mut().take_staged_effects();
                let lines = tx.nv_mut().pm_mut().take_lines();
                let trace = tx.nv_mut().pm_mut().take_trace();
                let stage_end_ns = tx.nv().pm().clock().now_ns();
                let (pending, releases) = tx.finish_staging();
                let staged = StagedFase {
                    worker,
                    ticket: ticket.clone(),
                    pending,
                    releases,
                    effects,
                    lines,
                    trace,
                    stage_end_ns,
                };
                inner.staged[worker].store(true, Ordering::SeqCst);
                inner.queued.fetch_add(1, Ordering::SeqCst);
                {
                    // Stamp the batch's open time if it has none (the
                    // committer clears it only when the queue empties).
                    let mut g = relock(&inner.group);
                    if g.opened_at.is_none() {
                        g.opened_at = Some(Instant::now());
                    }
                }
                inner.queue.push(staged);
                drop(tx); // releases the staging lanes, after the push
                out
            }));
            match attempt {
                Ok(out) => break out,
                Err(payload) => {
                    ctx.nv.abort_fase();
                    if payload.downcast_ref::<LaneConflict>().is_some() {
                        inner.stats.lane_conflicts.fetch_add(1, Ordering::SeqCst);
                        attempts += 1;
                        if attempts >= CONFLICT_RETRY_CAP {
                            return Err(LaneContention { worker, attempts }.into());
                        }
                        conflict_backoff(attempts);
                        continue;
                    }
                    std::panic::resume_unwind(payload);
                }
            }
        };
        drop(ctx);
        inner.stats.fases.fetch_add(1, Ordering::SeqCst);
        // Commit policy.
        match inner.mode {
            CommitMode::Pipelined => {
                if inner.all_active_staged() {
                    self.commit_now()?;
                }
            }
            CommitMode::Group { max_batch, timeout } => {
                let full = inner.queued.load(Ordering::SeqCst) >= max_batch;
                let timed_out = relock(&inner.group)
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= timeout);
                if full || timed_out || inner.all_active_staged() {
                    self.commit_now()?;
                }
            }
        }
        Ok(out)
    }

    /// Group-commit wait: block until this worker's staged FASE commits,
    /// or force the batch out after `timeout`. Waits holding only the
    /// group lock, and **drops it** before forcing the batch (which
    /// takes the global commit lock) — see the module docs' lock order.
    fn wait_for_batch(&self, worker: usize, timeout: Duration) -> Result<(), HeapPoisoned> {
        let inner = &*self.inner;
        let deadline = Instant::now() + timeout;
        loop {
            if !inner.staged[worker].load(Ordering::SeqCst) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return self.commit_now();
            }
            let g = relock(&inner.group);
            if !inner.staged[worker].load(Ordering::SeqCst) {
                return Ok(());
            }
            let (g, _) = inner
                .group_cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            drop(g);
        }
    }

    /// Commits any staged batch now (one ordering point). Used at the
    /// end of a run and by orderly shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the commit machinery is poisoned (see
    /// [`SharedModHeap::try_flush`] for the non-panicking form).
    pub fn flush(&self) {
        if let Err(e) = self.try_flush() {
            panic!("{e}");
        }
    }

    /// [`SharedModHeap::flush`], surfacing a poisoned commit lock as a
    /// typed error instead of panicking — the server's connection
    /// teardown uses this so one wedged engine degrades to clean error
    /// replies rather than a panic cascade.
    ///
    /// # Errors
    ///
    /// Returns [`HeapPoisoned`] if a thread panicked mid-commit.
    pub fn try_flush(&self) -> Result<(), HeapPoisoned> {
        self.commit_now()
    }

    fn commit_now(&self) -> Result<(), HeapPoisoned> {
        let mut st = self.inner.global.lock().map_err(|_| HeapPoisoned)?;
        self.inner.commit_locked(&mut st);
        Ok(())
    }

    /// Removes `worker` from the batch-completion quorum (its op stream
    /// is exhausted). If the remaining active workers have all staged,
    /// the batch commits — stragglers cannot stall the pipeline forever.
    pub fn deregister(&self, worker: usize) {
        self.inner.active[worker].store(false, Ordering::SeqCst);
        if self.inner.all_active_staged() {
            // Deregistration runs on teardown paths (a connection that
            // just panicked its worker included): tolerate a poisoned
            // commit lock — the staged batch is lost either way, exactly
            // like a crash before the fence.
            let _ = self.commit_now();
        }
        self.inner.group_cv.notify_all();
    }

    /// Re-adds `worker` to the batch-completion quorum (the inverse of
    /// [`SharedModHeap::deregister`]). A network front end uses this to
    /// activate a shard only while connections are pinned to it: idle
    /// slots must not count toward the all-active-staged quorum, or a
    /// single connection would pay the full group timeout on every
    /// batch.
    pub fn register(&self, worker: usize) {
        assert!(
            worker < self.inner.shards.len(),
            "worker {worker} out of range"
        );
        self.inner.active[worker].store(true, Ordering::SeqCst);
    }

    /// Registers a commit subscriber: called once per drained batch (in
    /// batch order, with monotone fence watermarks), strictly after the
    /// batch's fence executed and its tickets turned durable. The
    /// callback runs on whichever thread drove the commit, under the
    /// commit lock — keep it short and never call back into the heap.
    pub fn subscribe_commits(&self, f: impl Fn(&CommitNotice) + Send + Sync + 'static) {
        relock(&self.inner.subscribers.0).push(Box::new(f));
    }

    /// Blocks until `ticket` is durable — i.e. the batch carrying its
    /// FASE has published and its fence has executed. Returns the fence
    /// watermark (simulated ns).
    ///
    /// The wait is bounded: if the batch has not published after the
    /// group timeout (or ~1 ms in [`CommitMode::Pipelined`]), this
    /// thread forces it out itself via [`SharedModHeap::flush`] — so a
    /// lone connection on an otherwise idle server never deadlocks
    /// waiting for peers that will never stage.
    ///
    /// # Panics
    ///
    /// Panics if the commit machinery is poisoned (see
    /// [`SharedModHeap::try_wait_durable`] for the non-panicking form).
    pub fn wait_durable(&self, ticket: &CommitTicket) -> f64 {
        match self.try_wait_durable(ticket) {
            Ok(ns) => ns,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`SharedModHeap::wait_durable`], surfacing a poisoned commit lock
    /// as a typed error. The reply path of a network front end uses
    /// this: a wedged engine must fail the reply, not take the
    /// connection thread down with a panic.
    ///
    /// # Errors
    ///
    /// Returns [`HeapPoisoned`] if the ticket is still unresolved and
    /// draining the batch found the commit lock poisoned.
    pub fn try_wait_durable(&self, ticket: &CommitTicket) -> Result<f64, HeapPoisoned> {
        let inner = &*self.inner;
        let bound = match inner.mode {
            CommitMode::Group { timeout, .. } => timeout,
            CommitMode::Pipelined => Duration::from_millis(1),
        };
        loop {
            if let Some(ns) = ticket.fence_ns() {
                return Ok(ns);
            }
            let deadline = Instant::now() + bound;
            loop {
                let g = relock(&inner.group);
                if ticket.is_durable() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    // Nobody committed within the latency bound: drain
                    // the batch ourselves (re-check afterwards — the
                    // ticket may have been resolved by a racing commit).
                    // The group lock is dropped FIRST: `commit_now`
                    // takes global → group, so flushing while holding
                    // `g` would invert the lock order (module docs).
                    drop(g);
                    self.try_flush()?;
                    // Explicit post-flush re-check: the drain this thread
                    // just drove (or a racing commit that beat it to the
                    // lock) must have resolved the ticket — return its
                    // fence watermark directly instead of relying on the
                    // outer loop's poll to pick it up.
                    if let Some(ns) = ticket.fence_ns() {
                        return Ok(ns);
                    }
                    break;
                }
                let epoch = g.batch_epoch;
                let (g, _) = inner
                    .group_cv
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                // Predicate re-check: only an epoch bump (a published
                // batch) can have resolved the ticket, so only that
                // wake is worth breaking out to re-poll it. A spurious
                // wake with no bump keeps waiting out the bound instead
                // of burning poll cycles as if something had happened.
                let advanced = g.batch_epoch != epoch;
                drop(g);
                if advanced {
                    break;
                }
            }
        }
    }

    /// Single-threaded setup access to the underlying heap (publishing
    /// roots, preloading). Must not run concurrently with worker FASEs:
    /// staging takes no global lock, so exclusion is enforced by
    /// acquiring **every shard's mutex** (a worker mid-FASE holds its
    /// own), and the assert catches batches staged but not committed.
    /// Staging-lane heads are invalidated afterwards (setup may have
    /// republished roots underneath them).
    ///
    /// # Panics
    ///
    /// Panics if a batch is (partially) staged.
    pub fn setup<R>(&self, f: impl FnOnce(&mut ModHeap) -> R) -> R {
        let mut st = self.inner.global.lock().unwrap();
        // Workers never hold their shard lock while waiting on the
        // commit lock, so global → shards (in index order) cannot
        // deadlock; holding all of them means no FASE is mid-closure.
        let _shards: Vec<_> = self.inner.shards.iter().map(relock).collect();
        assert!(
            self.inner.queue.is_empty() && self.inner.queued.load(Ordering::SeqCst) == 0,
            "setup() with FASEs staged in the pipeline"
        );
        // Single-owner FASEs inside `f` fence as they go, freeing their
        // own deferral queue immediately — a live snapshot view could
        // still be traversing those chains. Snapshot readers take no
        // lock, so (like the worker-FASE exclusion above) this is a
        // caller contract; the assert catches violations at entry.
        assert_eq!(
            self.inner.registry.live_pins(),
            0,
            "setup() with live snapshot views"
        );
        let out = f(&mut st.heap);
        self.inner.lanes.clear_heads();
        // Setup may have swung the directory: republish so views taken
        // after setup see the new roots immediately. Trailing superseded
        // chains stay on the heap's own deferral queue (not epoch
        // limbo): no view is live — asserted above — and none taken from
        // here on can reach pre-setup versions, so the next fence may
        // free them exactly as it always did. Routing them through limbo
        // would defer the frees into the measured phase of benchmarks
        // that `reset_metrics` inside a setup, shifting charge points.
        self.inner.publish_snapshot(&mut st);
        out
    }

    /// Read-only access to the heap (lookups, stats).
    ///
    /// # Panics
    ///
    /// Panics if the commit machinery is poisoned (see
    /// [`SharedModHeap::try_with`] for the non-panicking form).
    pub fn with<R>(&self, f: impl FnOnce(&ModHeap) -> R) -> R {
        match self.try_with(f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`SharedModHeap::with`], surfacing a poisoned commit lock as a
    /// typed error: a heap whose commit panicked midway may hold a
    /// half-merged batch, so reads must not silently proceed on it.
    ///
    /// # Errors
    ///
    /// Returns [`HeapPoisoned`] if a thread panicked mid-commit.
    pub fn try_with<R>(&self, f: impl FnOnce(&ModHeap) -> R) -> Result<R, HeapPoisoned> {
        let st = self.inner.global.lock().map_err(|_| HeapPoisoned)?;
        Ok(f(&st.heap))
    }

    /// Takes a wait-free, consistent snapshot of every published root.
    ///
    /// The returned [`SnapshotView`] reads the multi-root image the
    /// most recently published batch left behind — all roots from the
    /// *same* batch, never a torn mix — and is **completely off the
    /// commit pipeline**: no staging lanes, no handoff-queue pushes, no
    /// fences, no group lock, not even the commit lock. The cost is two
    /// atomic stores (registry pin) plus one pointer load; traversals
    /// are then pure memory reads, so reader threads scale with no
    /// shared state beyond their registry slots.
    ///
    /// Holding the view defers reclamation of every chain it can reach
    /// (see [`crate::snapshot`]) — drop it promptly. The view does not
    /// observe batches published after it was taken; take a fresh one
    /// for fresh data.
    ///
    /// # Panics
    ///
    /// Panics if more than [`mod_alloc::MAX_READERS`] views are live at
    /// once.
    pub fn snapshot(&self) -> SnapshotView<'_> {
        let inner = &*self.inner;
        let (slot, pinned) = inner.registry.pin();
        // SAFETY: the pointer was published by `SnapPtr::swap` (or
        // `new`) and stays alive while any reader is pinned at an epoch
        // ≤ its own: the swing-before-advance publication order means
        // this load observes an image of epoch ≥ `pinned`, and the
        // epoch gate in `reclaim_locked` keeps such images (and every
        // chain they reach) alive until our slot unpins.
        let snap = unsafe { &*inner.snap.load() };
        debug_assert!(
            snap.epoch >= pinned,
            "snapshot epoch {} older than pinned epoch {pinned}",
            snap.epoch
        );
        SnapshotView::new(snap, &inner.read_nv, &inner.registry, slot)
    }

    /// The epoch of the most recently published snapshot (0 before the
    /// first committed batch; bumped once per committed batch and once
    /// per [`SharedModHeap::setup`]).
    pub fn snapshot_epoch(&self) -> u64 {
        self.inner.registry.current()
    }

    /// Number of currently live (pinned) snapshot views — observability
    /// for reclamation stalls: limbo only drains past the oldest pin.
    pub fn live_reader_pins(&self) -> usize {
        self.inner.registry.live_pins()
    }

    /// Installs a hook that `commit_locked` runs between the directory
    /// swing and the snapshot publication — the race-window tests pin
    /// readers exactly there.
    #[cfg(test)]
    pub(crate) fn set_mid_commit_hook(&self, f: impl Fn() + Send + Sync + 'static) {
        *relock(&self.inner.mid_commit_hook.0) = Some(Box::new(f));
    }

    /// Pipeline counters — read lock-free from atomics, so the bench
    /// reporter never perturbs staging throughput.
    pub fn stats(&self) -> PipelineStats {
        self.inner.stats.snapshot()
    }

    /// Simulated wall-clock time: the slowest timeline (worker lanes run
    /// in parallel; batch fences synchronize them with the commit
    /// stage's clock).
    pub fn sim_wall_ns(&self) -> f64 {
        let mut wall = self.with(|h| h.nv().pm().clock().now_ns());
        for shard in &self.inner.shards {
            wall = wall.max(relock(shard).nv.pm().clock().now_ns());
        }
        wall
    }

    /// All timelines' PM counters rolled up into one total: each
    /// worker's staging activity (reads, writes, flushes, hidden drain
    /// overlap) plus the commit stage's fences. Snapshots are per-shard
    /// copies under each shard's own (uncontended) lock — the global
    /// commit lock is never taken.
    pub fn lane_stats(&self) -> PmStats {
        let mut total = PmStats::new();
        for shard in &self.inner.shards {
            total.merge(relock(shard).nv.pm().stats());
        }
        // PM counters are plain values, valid even mid-commit — a
        // reporter reading them must not turn one worker panic into a
        // cascade, so the global lock is relocked here (reads only).
        total.merge(
            self.inner
                .global
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .heap
                .nv()
                .pm()
                .stats(),
        );
        total
    }

    /// Fraction of the workers' WPQ drain workload hidden under staging
    /// compute instead of stalled on at batch fences
    /// ([`mod_pmem::PmStats::overlap_ratio`] over all timelines). This
    /// is the number that shows group commits genuinely amortize: 0
    /// means every batch fence paid the full serialized drain, values
    /// toward 1 mean the pipelined staging hid it.
    pub fn overlap_ratio(&self) -> f64 {
        self.lane_stats().overlap_ratio()
    }

    /// Flushes the pipeline, then issues an extra fence so all deferred
    /// reclamation completes (see [`ModHeap::quiesce`]).
    pub fn quiesce(&self) {
        let mut st = self.inner.global.lock().unwrap();
        self.inner.commit_locked(&mut st);
        // Epoch-clear limbo chains rejoin the deferral queue so the
        // quiesce fence frees them; chains a live view can still reach
        // stay in limbo until their readers unpin.
        self.inner.reinject_unpinned(&mut st);
        st.heap.quiesce();
        self.inner.prune_old_snaps(&mut st);
    }

    /// Takes a crash image of the pool *as is* — staged-but-uncommitted
    /// FASEs are naturally lost (their lines still live in the worker
    /// handles), exactly like power failing mid-pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless the pool was created with crash simulation.
    pub fn crash_image(&self, policy: CrashPolicy) -> Pmem {
        self.with(|h| h.nv().pm().crash_image(policy))
    }

    /// Unwraps the shared heap after all workers are done: flushes the
    /// pipeline and absorbs every worker shard (arena space, free lists,
    /// residual counters) back into the single-owner heap.
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle are still alive.
    pub fn into_heap(self) -> ModHeap {
        self.flush();
        let inner = Arc::try_unwrap(self.inner).expect("into_heap with live SharedModHeap clones");
        let mut state = inner.global.into_inner().unwrap();
        for shard in inner.shards {
            // A worker that panicked (and was recovered via `relock`)
            // leaves its shard mutex poisoned but its state consistent.
            let ctx = shard.into_inner().unwrap_or_else(PoisonError::into_inner);
            state.heap.nv_mut().absorb_worker(ctx.nv);
        }
        // Sole owner now, so no snapshot view is live (views borrow the
        // handle this call consumed). Chains still in epoch limbo go
        // back onto the single-owner deferral queue, to be freed at the
        // next fence (`close`/`quiesce`).
        for b in state.limbo.drain(..) {
            for v in b.versions {
                state.heap.defer_release(v);
            }
        }
        state.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{DurableMap, DurableQueue};
    use mod_pmem::{Durability, PmemConfig};

    fn shared(workers: usize) -> SharedModHeap {
        SharedModHeap::create(Pmem::new(PmemConfig::testing()), workers)
    }

    #[test]
    fn batch_of_n_fases_costs_one_fence() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let fences = sh.with(|h| h.nv().pm().stats().fences);
        for w in 0..4 {
            sh.fase(w, |tx| map.insert_in(tx, &(w as u64), &1));
        }
        let delta = sh.with(|h| h.nv().pm().stats().fences) - fences;
        assert_eq!(delta, 1, "four FASEs, one pipelined ordering point");
        let stats = sh.stats();
        assert_eq!(stats.fases, 4);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_fases, 4);
        assert_eq!(stats.max_batch, 4);
        // All four updates took effect (same-root FASEs chain on lanes).
        sh.with(|h| {
            for w in 0..4u64 {
                assert_eq!(map.get(h, &w), Some(1));
            }
        });
    }

    #[test]
    fn batch_fases_serialize_on_one_root() {
        // All workers increment the same key: lane chaining must
        // serialize them, not lose updates.
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| map.insert(h, &0, &0));
        for _round in 0..3 {
            for w in 0..4 {
                sh.fase(w, |tx| {
                    let cur = map.get_in(tx, &0).unwrap();
                    map.insert_in(tx, &0, &(cur + 1));
                });
            }
        }
        sh.flush();
        assert_eq!(sh.with(|h| map.get(h, &0)), Some(12), "no lost updates");
    }

    #[test]
    fn fast_worker_stalls_pipeline_instead_of_overwriting() {
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        // Worker 0 stages twice in a row; the second fase forces the
        // half-full batch out first (Pipelined mode never blocks).
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.fase(0, |tx| q.enqueue_in(tx, &2));
        sh.fase(1, |tx| q.enqueue_in(tx, &3));
        let stats = sh.stats();
        assert_eq!(stats.fases, 3);
        // The stall drained {enq 1} as its own batch; {enq 2, enq 3}
        // completed the quorum and committed together.
        assert_eq!(stats.batches, 2, "stall split the batches");
        assert_eq!(stats.batched_fases, 3);
        sh.with(|h| assert_eq!(q.len(h), 3));
    }

    #[test]
    fn last_deregistering_worker_drains_the_pipeline() {
        // Worker 0 stages and leaves; worker 1 leaves without staging.
        // The moment no active worker remains, the staged batch must
        // commit — otherwise cleanly exiting workers would strand their
        // final (acknowledged) FASEs unfenced.
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.deregister(0);
        assert_eq!(sh.stats().batches, 0, "worker 1 still owes a FASE");
        sh.deregister(1);
        assert_eq!(sh.stats().batches, 1, "last deregister drains");
        sh.with(|h| assert_eq!(q.len(h), 1));
    }

    #[test]
    fn deregister_unblocks_partial_batch() {
        let sh = shared(3);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.fase(1, |tx| q.enqueue_in(tx, &2));
        // Worker 2 exits without staging: its deregistration completes
        // the quorum and the batch commits.
        sh.deregister(2);
        assert_eq!(sh.stats().batches, 1);
        sh.with(|h| assert_eq!(q.len(h), 2));
    }

    #[test]
    fn all_noop_batch_is_free() {
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let fences = sh.with(|h| h.nv().pm().stats().fences);
        for w in 0..2 {
            sh.fase(w, |tx| {
                assert!(q.dequeue_in(tx).is_none());
            });
        }
        sh.flush();
        let delta = sh.with(|h| h.nv().pm().stats().fences) - fences;
        assert_eq!(delta, 0, "empty-queue dequeues commit nothing");
        assert_eq!(sh.stats().batches, 0);
    }

    #[test]
    fn batched_commit_is_durable_and_recoverable() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        for w in 0..4u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &w);
                map.insert_in(tx, &w, &(w * 10));
            });
        }
        sh.quiesce();
        let img = sh.crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        let map: DurableMap<u64, u64> = h2.root(0).open().unwrap();
        let q: DurableQueue<u64> = h2.root(1).open().unwrap();
        for w in 0..4u64 {
            assert_eq!(map.get(&h2, &w), Some(w * 10));
        }
        assert_eq!(q.len(&h2), 4);
    }

    #[test]
    fn crash_before_batch_commit_loses_whole_suffix_atomically() {
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        // One full committed batch...
        for w in 0..4u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &w);
                map.insert_in(tx, &w, &w);
            });
        }
        sh.quiesce();
        // ...then a partial batch that never commits.
        for w in 0..2u64 {
            sh.fase(w as usize, |tx| {
                q.enqueue_in(tx, &(100 + w));
                map.insert_in(tx, &(100 + w), &w);
            });
        }
        let img = sh.crash_image(CrashPolicy::PersistAll);
        let (mut h2, _) = ModHeap::open(img);
        let map: DurableMap<u64, u64> = h2.root(0).open().unwrap();
        let q: DurableQueue<u64> = h2.root(1).open().unwrap();
        assert_eq!(q.len(&h2), 4, "staged suffix gone");
        for w in 0..2u64 {
            assert!(map.get(&h2, &(100 + w)).is_none());
        }
        for w in 0..4u64 {
            assert_eq!(map.get(&h2, &w), Some(w), "committed batch intact");
        }
    }

    #[test]
    fn worker_timelines_overlap_in_simulated_time() {
        // The same total work spread over 4 worker timelines must finish
        // in less simulated wall time than on 1.
        let run = |workers: usize| {
            let sh = shared(workers);
            let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
            sh.setup(|h| h.nv_mut().pm_mut().reset_metrics());
            for i in 0..40u64 {
                sh.fase((i % workers as u64) as usize, |tx| {
                    tx.nv_mut().pm_mut().charge_ns(400.0);
                    map.insert_in(tx, &i, &i)
                });
            }
            sh.flush();
            sh.sim_wall_ns()
        };
        let solo = run(1);
        let four = run(4);
        assert!(four > 0.0);
        assert!(
            four < 0.8 * solo,
            "4-worker wall {four:.0} ns should be well under 1-worker {solo:.0} ns"
        );
    }

    #[test]
    fn batch_commit_overlaps_staging_with_drain() {
        // While workers 1..3 stage (compute + their own flushes), worker
        // 0's flushes drain in the background; the single batch fence
        // pays only the residual, so the timelines record real overlap.
        let sh = shared(4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| h.nv_mut().pm_mut().reset_metrics());
        for round in 0..5u64 {
            for w in 0..4 {
                sh.fase(w, |tx| {
                    tx.nv_mut().pm_mut().charge_ns(500.0); // app compute
                    map.insert_in(tx, &(round * 4 + w as u64), &(w as u64));
                });
            }
        }
        sh.flush();
        let ratio = sh.overlap_ratio();
        assert!(
            ratio > 0.0,
            "pipelined staging must hide some drain work, got {ratio:.3}"
        );
        let lanes = sh.lane_stats();
        assert!(lanes.overlap_ns > 0.0);
        assert!(lanes.residual_stall_ns >= 0.0);
    }

    #[test]
    fn lane_stats_roll_up_worker_activity() {
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| h.nv_mut().pm_mut().reset_metrics());
        for w in 0..2 {
            sh.fase(w, |tx| map.insert_in(tx, &(w as u64), &1));
        }
        sh.flush();
        let lanes = sh.lane_stats();
        assert!(lanes.writes > 0, "staging writes live on worker handles");
        assert_eq!(lanes.fences, 1, "the single batch fence");
        let global_writes = sh.with(|h| h.nv().pm().stats().writes);
        assert!(
            global_writes < lanes.writes,
            "commit stage writes only the directory swing"
        );
    }

    #[test]
    fn shared_heap_is_actually_shareable_across_threads() {
        let sh = shared(4);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let mut handles = Vec::new();
        for w in 0..4 {
            let sh = sh.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    sh.fase(w, |tx| q.enqueue_in(tx, &(w as u64 * 100 + i)));
                }
                sh.deregister(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sh.flush();
        sh.with(|h| assert_eq!(q.len(h), 100));
        // Unwrapping succeeds once the worker clones are gone.
        let mut heap = sh.into_heap();
        heap.quiesce();
        assert_eq!(heap.pending_reclaims(), 0);
    }

    #[test]
    fn disjoint_roots_stage_in_parallel_threads() {
        // One map per worker: no staging lane is ever shared, so real
        // threads stage with zero coordination and every update lands.
        let sh = shared(4);
        let maps: Vec<DurableMap<u64, u64>> =
            (0..4).map(|_| sh.setup(DurableMap::create)).collect();
        let mut handles = Vec::new();
        for (w, map) in maps.iter().enumerate() {
            let sh = sh.clone();
            let map = *map;
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    sh.fase(w, |tx| map.insert_in(tx, &i, &(w as u64)));
                }
                sh.deregister(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sh.flush();
        sh.with(|h| {
            for (w, map) in maps.iter().enumerate() {
                assert_eq!(map.len(h), 50, "worker {w}'s map complete");
                assert_eq!(map.get(h, &7), Some(w as u64));
            }
        });
    }

    #[test]
    fn group_commit_batches_without_quorum() {
        // Group mode publishes on max_batch, not on all-active-staged:
        // one fast worker's stream still amortizes fences.
        let sh = SharedModHeap::create_with(
            Pmem::new(PmemConfig::testing()),
            2,
            CommitMode::Group {
                max_batch: 4,
                timeout: Duration::from_millis(50),
            },
        );
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let fences = sh.with(|h| h.nv().pm().stats().fences);
        // Worker 0 and 1 alternate; no lap happens until 4 are staged,
        // at which point the batch publishes at once.
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        sh.fase(1, |tx| q.enqueue_in(tx, &2));
        assert_eq!(sh.stats().batches, 1, "quorum still commits a full house");
        sh.deregister(1);
        sh.fase(0, |tx| q.enqueue_in(tx, &3));
        sh.fase(0, |tx| q.enqueue_in(tx, &4));
        sh.flush();
        let delta = sh.with(|h| h.nv().pm().stats().fences) - fences;
        sh.with(|h| assert_eq!(q.len(h), 4));
        assert!(delta <= 3, "group mode amortized the commit points");
    }

    #[test]
    fn group_commit_timeout_bounds_fase_latency() {
        // A lapping worker in Group mode blocks — but no longer than
        // `timeout`, after which it publishes the batch itself. This is
        // the condvar path: nobody else ever commits here.
        let timeout = Duration::from_millis(30);
        let sh = SharedModHeap::create_with(
            Pmem::new(PmemConfig::testing()),
            2,
            CommitMode::Group {
                max_batch: 8,
                timeout,
            },
        );
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        sh.fase(0, |tx| q.enqueue_in(tx, &1));
        let t0 = Instant::now();
        sh.fase(0, |tx| q.enqueue_in(tx, &2)); // laps: waits, then commits
        let waited = t0.elapsed();
        assert!(waited >= timeout, "second FASE must wait for the timeout");
        assert!(
            waited < timeout * 20,
            "timeout bounds the wait (took {waited:?})"
        );
        assert_eq!(sh.stats().batches, 1, "the lapped batch was forced out");
        sh.flush();
        sh.with(|h| assert_eq!(q.len(h), 2));
    }

    #[test]
    fn conflicting_lane_orders_retry_not_deadlock() {
        // Two threads repeatedly update the same two roots in opposite
        // orders. Ordered acquisition + conflict-abort-retry must make
        // progress and lose nothing.
        let sh = shared(2);
        let a: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let b: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.setup(|h| {
            a.insert(h, &0, &0);
            b.insert(h, &0, &0);
        });
        let mut handles = Vec::new();
        for w in 0..2usize {
            let sh = sh.clone();
            let (first, second) = if w == 0 { (a, b) } else { (b, a) };
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    sh.fase(w, |tx| {
                        let x = first.get_in(tx, &0).unwrap();
                        first.insert_in(tx, &0, &(x + 1));
                        let y = second.get_in(tx, &0).unwrap();
                        second.insert_in(tx, &0, &(y + 1));
                    });
                }
                sh.deregister(w);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sh.flush();
        sh.with(|h| {
            assert_eq!(a.get(h, &0), Some(100), "map a saw every increment");
            assert_eq!(b.get(h, &0), Some(100), "map b saw every increment");
        });
        // Livelock-freedom witness: every conflict-aborted attempt was
        // retried to completion (100 + 100 increments landed), and the
        // aborts are observable — never silent spinning.
        let stats = sh.stats();
        assert_eq!(stats.fases, 100, "every FASE committed despite conflicts");
        assert!(
            stats.lane_conflicts < CONFLICT_RETRY_CAP as u64 * 100,
            "bounded backoff kept retries finite: {} aborts",
            stats.lane_conflicts
        );
    }

    #[test]
    fn exhausted_conflict_budget_surfaces_typed_error() {
        // Worker 0 parks inside a FASE holding root 0's lane; worker 1
        // stages root 1 then root 0 — an out-of-order acquisition that
        // aborts, backs off and retries until the bounded budget runs
        // out and `try_fase` reports LaneContention instead of spinning
        // forever.
        use std::sync::mpsc;
        let sh = shared(2);
        let a: DurableMap<u64, u64> = sh.setup(DurableMap::create); // root 0
        let b: DurableMap<u64, u64> = sh.setup(DurableMap::create); // root 1
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let holder = {
            let sh = sh.clone();
            std::thread::spawn(move || {
                sh.fase(0, |tx| {
                    a.insert_in(tx, &0, &1);
                    entered_tx.send(()).unwrap();
                    // Park while holding lane 0 until the peer gave up.
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let err = sh
            .try_fase(1, |tx| {
                b.insert_in(tx, &0, &2); // lane 1: ascending, fine
                a.insert_in(tx, &0, &2); // lane 0: out of order → conflict
            })
            .unwrap_err();
        assert!(err.to_string().contains("bounded backoff"));
        let EngineError::Contention(err) = err else {
            panic!("lane exhaustion must surface as Contention, got {err:?}");
        };
        assert_eq!(err.worker, 1);
        assert_eq!(err.attempts, CONFLICT_RETRY_CAP);
        assert!(sh.stats().lane_conflicts >= CONFLICT_RETRY_CAP as u64);
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        // The aborted FASE rolled back cleanly: resubmitting it works.
        sh.fase(1, |tx| {
            b.insert_in(tx, &0, &2);
            a.insert_in(tx, &0, &2);
        });
        sh.flush();
        sh.with(|h| {
            assert_eq!(a.get(h, &0), Some(2));
            assert_eq!(b.get(h, &0), Some(2));
        });
    }

    #[test]
    fn file_backed_shared_heap_appends_one_record_per_batch_fence() {
        let mut path = std::env::temp_dir();
        path.push(format!("mod_shared_{}.pool", std::process::id()));
        let pm = Pmem::create_file(&path, PmemConfig::testing()).unwrap();
        let sh = SharedModHeap::create(pm, 4);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let setup_batches = sh.with(|h| h.nv().pm().backend_stats().fence_batches);
        for round in 0..3u64 {
            for w in 0..4 {
                sh.fase(w, |tx| map.insert_in(tx, &(round * 4 + w as u64), &round));
            }
        }
        let batches = sh.with(|h| h.nv().pm().backend_stats().fence_batches - setup_batches);
        assert_eq!(
            batches, 3,
            "12 FASEs in 3 batches: one fence record per group fence"
        );
        // Orderly close, then recover in a "new process" and verify.
        drop(sh.into_heap().close().unwrap());
        let (mut h2, _) = ModHeap::open_file(&path, PmemConfig::testing()).unwrap();
        let map2: DurableMap<u64, u64> = h2.root(0).open().unwrap();
        for round in 0..3u64 {
            for w in 0..4u64 {
                assert_eq!(map2.get(&h2, &(round * 4 + w)), Some(round));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ticket_turns_durable_only_at_the_batch_fence() {
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let ((), ticket) = sh.fase_ticketed(0, |tx| {
            map.insert_in(tx, &1, &10);
        });
        // Staged but unpublished: an acknowledgement now would lie.
        assert!(!ticket.is_durable(), "no fence has run yet");
        assert_eq!(ticket.fence_ns(), None);
        sh.fase(1, |tx| map.insert_in(tx, &2, &20)); // completes the quorum
        assert!(ticket.is_durable(), "batch published ⇒ ticket durable");
        let fence = ticket.fence_ns().unwrap();
        assert!(fence > 0.0);
        // The watermark is the commit stage's clock at publish time.
        let last = f64::from_bits(sh.inner.last_fence_ns.load(Ordering::SeqCst));
        assert_eq!(fence.to_bits(), last.to_bits());
    }

    #[test]
    fn read_only_ticket_resolves_without_a_fence() {
        // An all-no-op batch publishes nothing (no fence) but its FASEs
        // wrote nothing either — their tickets must still resolve, or a
        // read-mostly connection would hang on replies forever.
        let sh = shared(2);
        let q: DurableQueue<u64> = sh.setup(DurableQueue::create);
        let (got, ticket) = sh.fase_ticketed(0, |tx| q.dequeue_in(tx));
        assert!(got.is_none());
        sh.fase(1, |tx| {
            assert!(q.dequeue_in(tx).is_none());
        });
        assert!(ticket.is_durable(), "no-op batch still resolves tickets");
        assert_eq!(sh.stats().batches, 0, "and it stayed free");
    }

    #[test]
    fn wait_durable_forces_the_batch_after_the_group_timeout() {
        // One connection on an otherwise idle server: nobody else will
        // ever stage, so wait_durable must publish the batch itself
        // after the mode's latency bound instead of deadlocking.
        let timeout = Duration::from_millis(20);
        let sh = SharedModHeap::create_with(
            Pmem::new(PmemConfig::testing()),
            2,
            CommitMode::Group {
                max_batch: 8,
                timeout,
            },
        );
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let ((), ticket) = sh.fase_ticketed(0, |tx| {
            map.insert_in(tx, &7, &7);
        });
        assert!(!ticket.is_durable());
        let t0 = Instant::now();
        let fence = sh.wait_durable(&ticket);
        let waited = t0.elapsed();
        assert!(ticket.is_durable());
        assert_eq!(ticket.fence_ns(), Some(fence));
        assert!(waited >= timeout, "honored the group latency bound");
        assert!(waited < timeout * 20, "but not much more ({waited:?})");
        assert_eq!(sh.stats().batches, 1, "the waiter drained the batch");
        sh.with(|h| assert_eq!(map.get(h, &7), Some(7)));
    }

    #[test]
    fn commit_subscribers_see_batches_in_order_with_fence_watermarks() {
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let notices: Arc<Mutex<Vec<CommitNotice>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let notices = Arc::clone(&notices);
            sh.subscribe_commits(move |n| notices.lock().unwrap().push(n.clone()));
        }
        for round in 0..3u64 {
            let ((), ticket) = sh.fase_ticketed(0, |tx| {
                map.insert_in(tx, &round, &round);
            });
            sh.fase(1, |tx| map.insert_in(tx, &(100 + round), &round));
            let seen = notices.lock().unwrap();
            let last = seen.last().expect("a notice per batch");
            assert_eq!(last.batch_seq, round + 1, "monotone batch sequence");
            assert_eq!(last.fases, 2);
            assert!(last.committed);
            assert_eq!(
                Some(last.fence_ns),
                ticket.fence_ns(),
                "notice carries the same fence watermark as the tickets"
            );
        }
        let seen = notices.lock().unwrap();
        assert_eq!(seen.len(), 3);
        assert!(
            seen.windows(2).all(|w| w[0].fence_ns <= w[1].fence_ns),
            "fence watermarks are monotone across batches"
        );
    }

    #[test]
    fn early_publish_wakes_all_lapped_group_waiters() {
        // Regression for the missed-notify audit: two workers lap the
        // pipeline and park on the group condvar with a long timeout; a
        // third worker completes the quorum and the batch publishes
        // early. BOTH lapped waiters must wake promptly — if either
        // slept out the full timeout, a notify was lost.
        use std::sync::mpsc;
        let timeout = Duration::from_secs(5);
        let sh = SharedModHeap::create_with(
            Pmem::new(PmemConfig::testing()),
            3,
            CommitMode::Group {
                max_batch: 64,
                timeout,
            },
        );
        let maps: Vec<DurableMap<u64, u64>> =
            (0..3).map(|_| sh.setup(DurableMap::create)).collect();
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for (w, &map) in maps.iter().enumerate().take(2) {
            let sh = sh.clone();
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                sh.fase(w, |t| map.insert_in(t, &0, &1)); // stages
                tx.send(w).unwrap();
                let t0 = Instant::now();
                sh.fase(w, |t| map.insert_in(t, &1, &2)); // laps: waits
                t0.elapsed()
            }));
        }
        // Both workers have a FASE in the open batch and are lapping.
        rx.recv().unwrap();
        rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let them park
        let t0 = Instant::now();
        sh.fase(2, |t| maps[2].insert_in(t, &0, &3)); // quorum → publish
        for h in handles {
            let waited = h.join().unwrap();
            assert!(
                waited < timeout / 2,
                "lapped waiter slept {waited:?} — missed the early publish"
            );
        }
        assert!(t0.elapsed() < timeout / 2);
        assert!(sh.stats().batches >= 1);
        sh.flush();
        sh.with(|h| {
            for map in &maps {
                assert_eq!(map.get(h, &0).map(|_| ()), Some(()));
            }
            assert_eq!(maps[0].get(h, &1), Some(2));
            assert_eq!(maps[1].get(h, &1), Some(2));
        });
    }

    #[test]
    fn worker_panic_does_not_poison_the_shard_for_later_fases() {
        // An application bug (a non-LaneConflict panic inside a FASE
        // closure) unwinds through the worker's shard guard and poisons
        // the mutex. `abort_fase` already rolled the staging back before
        // the unwind, so the shard state is consistent — later FASEs on
        // the same worker must recover the lock and commit normally
        // instead of cascading `PoisonError` panics to every caller.
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sh.fase(0, |tx| {
                map.insert_in(tx, &1, &1);
                panic!("application bug mid-FASE");
            })
        }));
        assert!(crashed.is_err(), "the app panic propagates to its caller");
        // The same worker keeps working; the aborted staging left no
        // trace.
        sh.fase(0, |tx| map.insert_in(tx, &2, &20));
        sh.fase(1, |tx| map.insert_in(tx, &3, &30));
        sh.flush();
        sh.with(|h| {
            assert_eq!(map.get(h, &1), None, "panicked FASE fully rolled back");
            assert_eq!(map.get(h, &2), Some(20));
            assert_eq!(map.get(h, &3), Some(30));
        });
        // Teardown absorbs the (recovered) poisoned shard cleanly too.
        let mut heap = sh.into_heap();
        heap.quiesce();
    }

    #[test]
    fn poisoned_commit_lock_surfaces_typed_errors_not_panics() {
        // Poison the GLOBAL commit lock (a panic while holding it, as a
        // mid-commit panic would) and verify every server-facing `try_*`
        // API degrades to a typed error instead of a panic cascade.
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        // A ticket staged before the poison: its durability wait must
        // also fail typed (the batch can never publish).
        let ((), ticket) = sh.fase_ticketed(0, |tx| map.insert_in(tx, &1, &1));
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sh.setup(|_| panic!("die holding the commit lock"));
        }));
        assert!(crashed.is_err());
        assert_eq!(sh.try_with(|h| map.get(h, &1)), Err(HeapPoisoned));
        assert_eq!(sh.try_flush(), Err(HeapPoisoned));
        assert_eq!(sh.try_wait_durable(&ticket), Err(HeapPoisoned));
        // Worker 0 already has a staged FASE: its lap path hits the
        // poisoned commit. Worker 1 stages fresh and fails at the
        // commit-policy step (quorum complete, commit wedged).
        let err = sh.try_fase(0, |tx| map.insert_in(tx, &2, &2)).unwrap_err();
        assert_eq!(err, EngineError::Poisoned(HeapPoisoned));
        let err = sh
            .try_fase_ticketed(1, |tx| map.insert_in(tx, &3, &3))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, EngineError::Poisoned(HeapPoisoned));
        // Teardown paths tolerate the wedge instead of double-panicking.
        sh.deregister(0);
        sh.deregister(1);
        // Reporters still read (counters are plain values).
        let _ = sh.lane_stats();
    }

    #[test]
    fn lapped_worker_and_timed_out_durability_waiters_all_release() {
        // Lock-order regression alongside
        // `early_publish_wakes_all_lapped_group_waiters`: two reader
        // threads park in `wait_durable` on tickets of an open batch
        // while a third worker laps the pipeline and parks in the group
        // wait. Nobody completes the quorum, so release depends entirely
        // on the bounded-wait fallback — each waiter must drop the group
        // lock *before* forcing the flush (group → global would
        // deadlock against the committer's global → group), and all
        // three threads must come back within a few timeouts. Worker 3
        // exists but never stages, so the quorum stays incomplete and
        // nothing publishes the batch early — release is the fallback's
        // job alone.
        use std::sync::mpsc;
        let timeout = Duration::from_millis(60);
        let sh = SharedModHeap::create_with(
            Pmem::new(PmemConfig::testing()),
            4,
            CommitMode::Group {
                max_batch: 64,
                timeout,
            },
        );
        let maps: Vec<DurableMap<u64, u64>> =
            (0..3).map(|_| sh.setup(DurableMap::create)).collect();
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for (w, &map) in maps.iter().enumerate().skip(1) {
            let sh = sh.clone();
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let ((), ticket) = sh.fase_ticketed(w, |t| map.insert_in(t, &0, &(w as u64)));
                tx.send(()).unwrap();
                let t0 = Instant::now();
                let fence = sh.wait_durable(&ticket);
                assert!(fence > 0.0);
                assert!(ticket.is_durable());
                t0.elapsed()
            }));
        }
        rx.recv().unwrap();
        rx.recv().unwrap();
        let lapper = {
            let sh = sh.clone();
            let map = maps[0];
            std::thread::spawn(move || {
                sh.fase(0, |t| map.insert_in(t, &0, &0)); // stages batch 1
                let t0 = Instant::now();
                sh.fase(0, |t| map.insert_in(t, &1, &1)); // laps: parks
                t0.elapsed()
            })
        };
        for h in handles {
            let waited = h.join().unwrap();
            assert!(
                waited < timeout * 10,
                "durability waiter slept {waited:?} past the bounded fallback"
            );
        }
        let lapped = lapper.join().unwrap();
        assert!(
            lapped < timeout * 10,
            "lapped worker slept {lapped:?} past the group timeout"
        );
        assert!(sh.stats().batches >= 1, "someone forced the batch out");
        sh.flush();
        sh.with(|h| {
            for (w, map) in maps.iter().enumerate() {
                assert_eq!(map.get(h, &0), Some(w as u64));
            }
            assert_eq!(maps[0].get(h, &1), Some(1), "the lap's FASE landed too");
        });
    }

    #[test]
    fn fsync_group_commit_amortizes_fsync_rounds() {
        // Power-loss-grade durability at group-commit cost: with
        // `Durability::Fsync` on a 4-shard pool set and
        // `CommitMode::Group { max_batch: 4 }`, N FASEs share one fence
        // record and therefore one fsync round — fsync rounds per FASE
        // must be ≤ 1/max_batch.
        let mut path = std::env::temp_dir();
        path.push(format!("mod_shared_fsync_{}.pool", std::process::id()));
        let cfg = PmemConfig {
            journal_shards: 4,
            durability: Durability::Fsync,
            ..PmemConfig::testing()
        };
        let pm = Pmem::create_file(&path, cfg.clone()).unwrap();
        let sh = SharedModHeap::create_with(
            pm,
            4,
            CommitMode::Group {
                max_batch: 4,
                timeout: Duration::from_millis(100),
            },
        );
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        let before = sh.with(|h| h.nv().pm().backend_stats());
        assert_eq!(before.journal_shards, 4, "pool set is live");
        let fases = 16u64;
        for i in 0..fases {
            sh.fase((i % 4) as usize, |tx| map.insert_in(tx, &i, &i));
        }
        let after = sh.with(|h| h.nv().pm().backend_stats());
        let rounds = after.fsync_rounds - before.fsync_rounds;
        assert!(rounds >= 1, "Fsync mode must actually sync");
        assert!(
            rounds <= fases / 4,
            "group commit amortizes: {rounds} fsync rounds for {fases} FASEs \
             exceeds 1/max_batch"
        );
        assert!(
            after.fsyncs >= rounds,
            "each round syncs at least one shard journal"
        );
        drop(sh.into_heap().close().unwrap());
        // The set survives reopen with everything acked present.
        let (mut h2, _) = ModHeap::open_file(&path, cfg).unwrap();
        let map2: DurableMap<u64, u64> = h2.root(0).open().unwrap();
        for i in 0..fases {
            assert_eq!(map2.get(&h2, &i), Some(i));
        }
        drop(h2);
        std::fs::remove_file(&path).unwrap();
        for s in 0..4 {
            let _ = std::fs::remove_file(format!("{}.s{s}", path.display()));
        }
    }

    #[test]
    fn register_restores_a_slot_to_the_quorum() {
        let sh = shared(2);
        let map: DurableMap<u64, u64> = sh.setup(DurableMap::create);
        sh.deregister(1);
        // With slot 1 inactive, worker 0 alone is the quorum.
        sh.fase(0, |tx| map.insert_in(tx, &1, &1));
        assert_eq!(sh.stats().batches, 1, "solo quorum commits immediately");
        sh.register(1);
        sh.fase(0, |tx| map.insert_in(tx, &2, &2));
        assert_eq!(sh.stats().batches, 1, "slot 1 active again: batch waits");
        sh.fase(1, |tx| map.insert_in(tx, &3, &3));
        assert_eq!(sh.stats().batches, 2, "full quorum commits");
        sh.with(|h| {
            for k in 1..=3u64 {
                assert_eq!(map.get(h, &k), Some(k));
            }
        });
    }
}
