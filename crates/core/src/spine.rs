//! The persistent spine of hybrid ("Don't Persist All") roots.
//!
//! A hybrid root keeps its logical structure — every CHAMP/RRB interior
//! node — in the volatile node cache: allocated under
//! [`NvHeap::begin_volatile`], never flushed, never journaled, never
//! charged to the simulated timeline. What *is* persisted is a small
//! spine: a refcount-linked chain of **records**, one per effectful
//! operation, each carrying the operation's bytes (the value leaf). The
//! root directory entry of a hybrid root points at the head record under
//! [`crate::RootKind::Spine`], so the policy itself is durable: a pool
//! opened by a binary that only understands full persistence refuses the
//! root with a typed error instead of traversing records as trie nodes.
//!
//! Commit cost per update: one record block (flushed, journaled), one
//! directory-entry swing — the interior path copies that dominate full
//! persistence are gone. Recovery replays the chain oldest-to-newest
//! through `SpineOp::apply` — the *same* function staging uses — to
//! rebuild the volatile index, so replay and live execution cannot
//! drift.
//!
//! The chain is bounded by compaction: once a root has accumulated
//! `COMPACT_MIN_OPS` records and the chain is `COMPACT_FACTOR`×
//! longer than the structure's live size, the next record is written as
//! a `SpineOp::Snapshot` of the full logical state with no
//! predecessor, and the old chain is reclaimed through the normal
//! deferred-release path.

use crate::erased::{ErasedDs, RootKind};
use mod_alloc::NvHeap;
use mod_funcds::node::NodeBuf;
use mod_funcds::{PmMap, PmQueue, PmStack, PmVector};
use mod_pmem::PmPtr;

/// Per-root persistence policy (the "Don't Persist All" switch).
///
/// Selected at create time through [`crate::RootBuilder::policy`] and
/// recorded durably in the root directory; reopening a root under the
/// wrong policy fails with [`crate::OpenError::PolicyMismatch`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Hash)]
pub enum PersistPolicy {
    /// Every node of the functional structure is flushed and journaled
    /// (the original MOD discipline). Bit-identical to pre-policy pools.
    #[default]
    Full,
    /// Interior nodes live in the volatile node cache; only per-op spine
    /// records (value leaves + op tags) are flushed and journaled, and
    /// recovery rebuilds the index by replaying the spine.
    Hybrid,
}

/// Minimum chain length before compaction is considered.
pub(crate) const COMPACT_MIN_OPS: u64 = 64;

/// Chain-length-to-live-size ratio that triggers compaction.
pub(crate) const COMPACT_FACTOR: u64 = 8;

/// One effectful operation on a hybrid root, as persisted in a spine
/// record and replayed at recovery. `Map` ops serve both `DurableMap`
/// and `DurableSet` (sets are maps with empty values); the word-element
/// ops serve vector/stack/queue.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum SpineOp {
    /// Insert-or-overwrite of one substrate key (value = framed bytes).
    MapInsert { key: u64, val: Vec<u8> },
    /// Removal of one substrate key.
    MapRemove { key: u64 },
    /// Append one element.
    VecPush(u64),
    /// Point-write element `index`.
    VecSet { index: u64, elem: u64 },
    /// Remove the last element.
    VecPop,
    /// Push one element.
    StackPush(u64),
    /// Pop the top element.
    StackPop,
    /// Enqueue one element.
    QueueEnq(u64),
    /// Dequeue the head element.
    QueueDeq,
    /// Full logical state (compaction point / genesis): the chain before
    /// this record is not needed for recovery.
    Snapshot(SpineState),
}

/// The full logical contents of a hybrid root, for snapshot records.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum SpineState {
    /// Map entries, unordered.
    Map(Vec<(u64, Vec<u8>)>),
    /// Word elements: vector front-to-back, stack top-to-bottom, queue
    /// front-to-back (each kind's `peek_to_vec` order).
    Words(Vec<u64>),
}

const OP_MAP_INSERT: u8 = 1;
const OP_MAP_REMOVE: u8 = 2;
const OP_VEC_PUSH: u8 = 3;
const OP_VEC_SET: u8 = 4;
const OP_VEC_POP: u8 = 5;
const OP_STACK_PUSH: u8 = 6;
const OP_STACK_POP: u8 = 7;
const OP_QUEUE_ENQ: u8 = 8;
const OP_QUEUE_DEQ: u8 = 9;
const OP_SNAPSHOT: u8 = 10;

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }

    fn blob(&mut self) -> Vec<u8> {
        let len = u32::from_le_bytes(self.bytes[self.at..self.at + 4].try_into().unwrap()) as usize;
        self.at += 4;
        let v = self.bytes[self.at..self.at + len].to_vec();
        self.at += len;
        v
    }
}

impl SpineOp {
    /// Serializes the op for a spine record.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SpineOp::MapInsert { key, val } => {
                out.push(OP_MAP_INSERT);
                push_u64(&mut out, *key);
                push_blob(&mut out, val);
            }
            SpineOp::MapRemove { key } => {
                out.push(OP_MAP_REMOVE);
                push_u64(&mut out, *key);
            }
            SpineOp::VecPush(e) => {
                out.push(OP_VEC_PUSH);
                push_u64(&mut out, *e);
            }
            SpineOp::VecSet { index, elem } => {
                out.push(OP_VEC_SET);
                push_u64(&mut out, *index);
                push_u64(&mut out, *elem);
            }
            SpineOp::VecPop => out.push(OP_VEC_POP),
            SpineOp::StackPush(e) => {
                out.push(OP_STACK_PUSH);
                push_u64(&mut out, *e);
            }
            SpineOp::StackPop => out.push(OP_STACK_POP),
            SpineOp::QueueEnq(e) => {
                out.push(OP_QUEUE_ENQ);
                push_u64(&mut out, *e);
            }
            SpineOp::QueueDeq => out.push(OP_QUEUE_DEQ),
            SpineOp::Snapshot(state) => {
                out.push(OP_SNAPSHOT);
                match state {
                    SpineState::Map(entries) => {
                        push_u64(&mut out, entries.len() as u64);
                        for (k, v) in entries {
                            push_u64(&mut out, *k);
                            push_blob(&mut out, v);
                        }
                    }
                    SpineState::Words(words) => {
                        push_u64(&mut out, words.len() as u64);
                        for w in words {
                            push_u64(&mut out, *w);
                        }
                    }
                }
            }
        }
        out
    }

    /// Deserializes a record's op bytes. `kind` disambiguates the
    /// snapshot payload (maps carry blobs, the word kinds carry words).
    ///
    /// # Panics
    ///
    /// Panics on a malformed record (corruption — records live behind
    /// the same fence-and-journal discipline as every committed block).
    pub(crate) fn decode(kind: RootKind, bytes: &[u8]) -> SpineOp {
        let mut r = Reader {
            bytes: &bytes[1..],
            at: 0,
        };
        match bytes[0] {
            OP_MAP_INSERT => SpineOp::MapInsert {
                key: r.u64(),
                val: r.blob(),
            },
            OP_MAP_REMOVE => SpineOp::MapRemove { key: r.u64() },
            OP_VEC_PUSH => SpineOp::VecPush(r.u64()),
            OP_VEC_SET => SpineOp::VecSet {
                index: r.u64(),
                elem: r.u64(),
            },
            OP_VEC_POP => SpineOp::VecPop,
            OP_STACK_PUSH => SpineOp::StackPush(r.u64()),
            OP_STACK_POP => SpineOp::StackPop,
            OP_QUEUE_ENQ => SpineOp::QueueEnq(r.u64()),
            OP_QUEUE_DEQ => SpineOp::QueueDeq,
            OP_SNAPSHOT => {
                let n = r.u64() as usize;
                SpineOp::Snapshot(match kind {
                    RootKind::Map => SpineState::Map((0..n).map(|_| (r.u64(), r.blob())).collect()),
                    _ => SpineState::Words((0..n).map(|_| r.u64()).collect()),
                })
            }
            tag => panic!("corrupt spine record op tag {tag}"),
        }
    }

    /// Applies the op to the volatile version rooted at `cur`, returning
    /// the new version's root address. The caller must have entered the
    /// volatile allocation scope; `cur` is ignored (and may be 0) for
    /// `SpineOp::Snapshot`, which rebuilds from its own payload.
    pub(crate) fn apply(&self, nv: &mut NvHeap, kind: RootKind, cur: u64) -> u64 {
        debug_assert!(nv.in_volatile(), "spine replay outside volatile scope");
        if let SpineOp::Snapshot(state) = self {
            return build_snapshot(nv, kind, state);
        }
        let cur = PmPtr::from_addr(cur);
        match (kind, self) {
            (RootKind::Map, SpineOp::MapInsert { key, val }) => {
                PmMap::from_root(cur).insert(nv, *key, val).root().addr()
            }
            (RootKind::Map, SpineOp::MapRemove { key }) => {
                PmMap::from_root(cur).remove(nv, *key).0.root().addr()
            }
            (RootKind::Vector, SpineOp::VecPush(e)) => {
                PmVector::from_root(cur).push_back(nv, *e).root().addr()
            }
            (RootKind::Vector, SpineOp::VecSet { index, elem }) => PmVector::from_root(cur)
                .update(nv, *index, *elem)
                .root()
                .addr(),
            (RootKind::Vector, SpineOp::VecPop) => PmVector::from_root(cur)
                .pop_back(nv)
                .expect("VecPop record on empty vector")
                .0
                .root()
                .addr(),
            (RootKind::Stack, SpineOp::StackPush(e)) => {
                PmStack::from_root(cur).push(nv, *e).root().addr()
            }
            (RootKind::Stack, SpineOp::StackPop) => PmStack::from_root(cur)
                .pop(nv)
                .expect("StackPop record on empty stack")
                .0
                .root()
                .addr(),
            (RootKind::Queue, SpineOp::QueueEnq(e)) => {
                PmQueue::from_root(cur).enqueue(nv, *e).root().addr()
            }
            (RootKind::Queue, SpineOp::QueueDeq) => PmQueue::from_root(cur)
                .dequeue(nv)
                .expect("QueueDeq record on empty queue")
                .0
                .root()
                .addr(),
            (kind, op) => panic!("spine op {op:?} on a {kind:?} root"),
        }
    }
}

/// Builds a fresh volatile version from a snapshot payload, releasing
/// every intermediate version the chained construction creates.
fn build_snapshot(nv: &mut NvHeap, kind: RootKind, state: &SpineState) -> u64 {
    match (kind, state) {
        (RootKind::Map, SpineState::Map(entries)) => {
            let mut m = PmMap::empty(nv);
            for (k, v) in entries {
                let next = m.insert(nv, *k, v);
                m.release(nv);
                m = next;
            }
            m.root().addr()
        }
        (RootKind::Vector, SpineState::Words(words)) => {
            PmVector::from_slice(nv, words).root().addr()
        }
        (RootKind::Stack, SpineState::Words(words)) => {
            // Stored top-to-bottom; push bottom-up to reproduce it.
            let mut s = PmStack::empty(nv);
            for w in words.iter().rev() {
                let next = s.push(nv, *w);
                s.release(nv);
                s = next;
            }
            s.root().addr()
        }
        (RootKind::Queue, SpineState::Words(words)) => {
            let mut q = PmQueue::empty(nv);
            for w in words {
                let next = q.enqueue(nv, *w);
                q.release(nv);
                q = next;
            }
            q.root().addr()
        }
        (kind, state) => panic!("spine snapshot {state:?} for a {kind:?} root"),
    }
}

/// Captures the full logical state of the volatile version at `v` as a
/// snapshot op (compaction and genesis records).
pub(crate) fn state_of(nv: &NvHeap, kind: RootKind, v: u64) -> SpineOp {
    let v = PmPtr::from_addr(v);
    SpineOp::Snapshot(match kind {
        RootKind::Map => SpineState::Map(PmMap::from_root(v).peek_to_vec(nv)),
        RootKind::Vector => SpineState::Words(PmVector::from_root(v).peek_to_vec(nv)),
        RootKind::Stack => SpineState::Words(PmStack::from_root(v).peek_to_vec(nv)),
        RootKind::Queue => SpineState::Words(PmQueue::from_root(v).peek_to_vec(nv)),
        kind => panic!("no spine state for {kind:?}"),
    })
}

/// Live element count of the volatile version (compaction trigger).
pub(crate) fn live_len(nv: &NvHeap, kind: RootKind, v: u64) -> u64 {
    let v = PmPtr::from_addr(v);
    match kind {
        RootKind::Map => PmMap::from_root(v).peek_len(nv),
        RootKind::Vector => PmVector::from_root(v).peek_len(nv),
        RootKind::Stack => PmStack::from_root(v).peek_len(nv),
        RootKind::Queue => PmQueue::from_root(v).peek_len(nv),
        kind => panic!("no spine length for {kind:?}"),
    }
}

// ---------------------------------------------------------------------
// Record blocks
// ---------------------------------------------------------------------
//
// Layout (payload words):
//   [0] prev record pointer (0 terminates the chain)
//   [1] meta: logical RootKind in bits 56..64, ops-since-snapshot count
//       in bits 0..56 (snapshot records reset it to 0)
//   [2] op byte length
//   [3..] op bytes
//
// A record owns one reference to its predecessor, exactly like a trie
// node owns its children, so the existing deferred-release and recovery
// GC machinery reclaims chains with no special cases beyond the
// dispatch in `ErasedDs`.

const META_KIND_SHIFT: u64 = 56;
const META_COUNT_MASK: u64 = (1 << META_KIND_SHIFT) - 1;

/// Allocates, writes, and flushes one spine record; takes a reference on
/// `prev` (the new record and the superseded head both own it until the
/// superseded head is reclaimed).
pub(crate) fn store_record(
    nv: &mut NvHeap,
    prev: PmPtr,
    kind: RootKind,
    count: u64,
    op: &SpineOp,
) -> PmPtr {
    debug_assert!(count <= META_COUNT_MASK);
    let bytes = op.encode();
    let mut b = NodeBuf::with_words(3 + bytes.len() / 8 + 1);
    b.push_ptr(prev)
        .push_u64((kind.to_u64() << META_KIND_SHIFT) | count)
        .push_u64(bytes.len() as u64)
        .push_bytes(&bytes);
    let rec = b.store(nv);
    if !prev.is_null() {
        nv.rc_inc(prev);
    }
    rec
}

/// Reads a record's links and metadata (not the op bytes).
pub(crate) fn peek_record_meta(nv: &NvHeap, rec: PmPtr) -> (PmPtr, RootKind, u64) {
    let prev = PmPtr::from_addr(nv.peek_u64(rec.addr()));
    let meta = nv.peek_u64(rec.addr() + 8);
    (
        prev,
        RootKind::from_u64(meta >> META_KIND_SHIFT),
        meta & META_COUNT_MASK,
    )
}

/// Reads a record's op bytes.
pub(crate) fn peek_record_op(nv: &NvHeap, rec: PmPtr) -> Vec<u8> {
    let len = nv.peek_u64(rec.addr() + 16);
    nv.peek_vec(rec.addr() + 24, len)
}

/// The logical datastructure kind a spine chain encodes.
pub(crate) fn logical_kind(nv: &NvHeap, head: PmPtr) -> RootKind {
    peek_record_meta(nv, head).1
}

/// Releases one reference to a record, walking the chain iteratively
/// (chains can be thousands of records long between compactions; a
/// recursive drop would overflow the stack).
pub(crate) fn release_record(nv: &mut NvHeap, rec: PmPtr) {
    let mut cur = rec;
    while !cur.is_null() {
        if nv.rc_dec(cur) != 0 {
            return;
        }
        let prev = PmPtr::from_addr(nv.peek_u64(cur.addr()));
        nv.free(cur);
        cur = prev;
    }
}

/// Marks a record chain during recovery GC (stops at the first record
/// already marked through a sibling chain).
pub(crate) fn mark_record(nv: &mut NvHeap, rec: PmPtr) {
    let mut cur = rec;
    while !cur.is_null() {
        if !nv.mark_block(cur) {
            return;
        }
        cur = PmPtr::from_addr(nv.peek_u64(cur.addr()));
    }
}

/// Replays a spine chain into a fresh volatile version: collects the
/// records newest-to-oldest, then applies oldest-to-newest through the
/// same `SpineOp::apply` staging uses. Returns the logical kind and
/// the rebuilt version's root address.
pub(crate) fn replay(nv: &mut NvHeap, head: PmPtr) -> (RootKind, u64) {
    let mut ops = Vec::new();
    let mut kind = None;
    let mut cur = head;
    while !cur.is_null() {
        let (prev, k, _) = peek_record_meta(nv, cur);
        kind.get_or_insert(k);
        debug_assert_eq!(kind, Some(k), "spine chain changes kind mid-way");
        ops.push(peek_record_op(nv, cur));
        cur = prev;
    }
    let kind = kind.expect("empty spine chain");
    nv.begin_volatile();
    let mut v = 0u64;
    for bytes in ops.iter().rev() {
        let op = SpineOp::decode(kind, bytes);
        let next = op.apply(nv, kind, v);
        if v != 0 && next != v {
            ErasedDs {
                kind,
                root: PmPtr::from_addr(v),
            }
            .release(nv);
        }
        v = next;
    }
    nv.end_volatile();
    (kind, v)
}

// ---------------------------------------------------------------------
// Volatile-head annex words
// ---------------------------------------------------------------------

/// Packs a committed volatile head for the root annex: logical kind in
/// the top byte, root address below (addresses are far below 2^56).
pub(crate) fn pack_annex(kind: RootKind, addr: u64) -> u64 {
    debug_assert!(addr != 0 && addr <= META_COUNT_MASK);
    (kind.to_u64() << META_KIND_SHIFT) | addr
}

/// Unpacks a root-annex word (must be nonzero).
pub(crate) fn unpack_annex(word: u64) -> (RootKind, u64) {
    (
        RootKind::from_u64(word >> META_KIND_SHIFT),
        word & META_COUNT_MASK,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn ops_roundtrip_through_encoding() {
        let ops = [
            (
                RootKind::Map,
                SpineOp::MapInsert {
                    key: 7,
                    val: b"abc".to_vec(),
                },
            ),
            (RootKind::Map, SpineOp::MapRemove { key: 9 }),
            (RootKind::Vector, SpineOp::VecPush(11)),
            (RootKind::Vector, SpineOp::VecSet { index: 2, elem: 5 }),
            (RootKind::Vector, SpineOp::VecPop),
            (RootKind::Stack, SpineOp::StackPush(13)),
            (RootKind::Stack, SpineOp::StackPop),
            (RootKind::Queue, SpineOp::QueueEnq(17)),
            (RootKind::Queue, SpineOp::QueueDeq),
            (
                RootKind::Map,
                SpineOp::Snapshot(SpineState::Map(vec![(1, b"x".to_vec()), (2, Vec::new())])),
            ),
            (
                RootKind::Stack,
                SpineOp::Snapshot(SpineState::Words(vec![3, 2, 1])),
            ),
        ];
        for (kind, op) in ops {
            assert_eq!(SpineOp::decode(kind, &op.encode()), op, "{op:?}");
        }
    }

    #[test]
    fn records_chain_and_replay() {
        let mut nv = heap();
        let genesis = store_record(
            &mut nv,
            PmPtr::NULL,
            RootKind::Map,
            0,
            &SpineOp::Snapshot(SpineState::Map(Vec::new())),
        );
        let r1 = store_record(
            &mut nv,
            genesis,
            RootKind::Map,
            1,
            &SpineOp::MapInsert {
                key: 1,
                val: b"one".to_vec(),
            },
        );
        let r2 = store_record(
            &mut nv,
            r1,
            RootKind::Map,
            2,
            &SpineOp::MapInsert {
                key: 2,
                val: b"two".to_vec(),
            },
        );
        let (prev, kind, count) = peek_record_meta(&nv, r2);
        assert_eq!((prev, kind, count), (r1, RootKind::Map, 2));
        let (kind, v) = replay(&mut nv, r2);
        assert_eq!(kind, RootKind::Map);
        let m = PmMap::from_root(PmPtr::from_addr(v));
        assert_eq!(m.peek_get(&nv, 1), Some(b"one".to_vec()));
        assert_eq!(m.peek_get(&nv, 2), Some(b"two".to_vec()));
        assert_eq!(m.peek_len(&nv), 2);
    }

    #[test]
    fn replay_applies_removals_and_word_ops() {
        let mut nv = heap();
        let g = store_record(
            &mut nv,
            PmPtr::NULL,
            RootKind::Queue,
            0,
            &SpineOp::Snapshot(SpineState::Words(vec![5, 6])),
        );
        let r1 = store_record(&mut nv, g, RootKind::Queue, 1, &SpineOp::QueueEnq(7));
        let r2 = store_record(&mut nv, r1, RootKind::Queue, 2, &SpineOp::QueueDeq);
        let (_, v) = replay(&mut nv, r2);
        let q = PmQueue::from_root(PmPtr::from_addr(v));
        assert_eq!(q.peek_to_vec(&nv), vec![6, 7]);
    }

    #[test]
    fn snapshot_rebuild_matches_all_kinds() {
        let mut nv = heap();
        nv.begin_volatile();
        let mut m = PmMap::empty(&mut nv);
        for i in 0..10u64 {
            let next = m.insert(&mut nv, i, format!("v{i}").as_bytes());
            m.release(&mut nv);
            m = next;
        }
        let st = PmStack::empty(&mut nv).push(&mut nv, 1).push(&mut nv, 2);
        nv.end_volatile();
        for (kind, v) in [
            (RootKind::Map, m.root().addr()),
            (RootKind::Stack, st.root().addr()),
        ] {
            let snap = state_of(&nv, kind, v);
            nv.begin_volatile();
            let rebuilt = snap.apply(&mut nv, kind, 0);
            nv.end_volatile();
            match kind {
                RootKind::Map => {
                    let r = PmMap::from_root(PmPtr::from_addr(rebuilt));
                    let mut a = r.peek_to_vec(&nv);
                    let mut b = m.peek_to_vec(&nv);
                    a.sort();
                    b.sort();
                    assert_eq!(a, b);
                }
                _ => {
                    let r = PmStack::from_root(PmPtr::from_addr(rebuilt));
                    assert_eq!(r.peek_to_vec(&nv), st.peek_to_vec(&nv));
                }
            }
        }
    }

    #[test]
    fn release_reclaims_whole_chains_iteratively() {
        let mut nv = heap();
        let mut head = store_record(
            &mut nv,
            PmPtr::NULL,
            RootKind::Vector,
            0,
            &SpineOp::Snapshot(SpineState::Words(Vec::new())),
        );
        // Long enough to smash the stack if release recursed.
        for i in 1..=4000u64 {
            let next = store_record(&mut nv, head, RootKind::Vector, i, &SpineOp::VecPush(i));
            // The superseded head's reference moves to the new record;
            // drop the "directory" reference the old head carried.
            release_record(&mut nv, head);
            head = next;
        }
        assert_eq!(nv.stats().live_blocks, 4001);
        release_record(&mut nv, head);
        assert_eq!(nv.stats().live_blocks, 0, "chain fully reclaimed");
    }

    #[test]
    fn annex_words_roundtrip() {
        let w = pack_annex(RootKind::Queue, 0xbeef0);
        assert_eq!(unpack_annex(w), (RootKind::Queue, 0xbeef0));
    }
}
