//! Typed root handles and the persistent root directory.
//!
//! The original MOD interface handed applications raw `usize` root slots:
//! callers had to remember which slot held which datastructure type, pass
//! the right [`crate::RootKind`] to recovery, and juggle type-erased
//! `(slot, old, new)` tuples to compose updates. A [`Root<D>`] replaces
//! all of that with a typed, `Copy` handle whose datastructure type is
//! checked against persistent metadata when a pool is reopened.
//!
//! ## The root directory
//!
//! All typed roots live in one *root directory*: a parent object
//! (Fig 8c's `CommitSiblings` machinery) published in the distinguished
//! slot [`ROOT_DIR_SLOT`], holding a `(kind, root)` entry per application
//! datastructure. Because every typed root is a child of this single
//! directory, **any** combination of structures updated in one FASE
//! commits like siblings: build the shadows, write one fresh directory,
//! fence once, swing one pointer. The paper's general unrelated-roots
//! case (Fig 8d, three ordering points) is never needed on this path —
//! a multi-structure [`crate::ModHeap::fase`] costs exactly one `sfence`,
//! and recovery is self-describing (the directory records each entry's
//! kind, so reopening a pool needs no caller-supplied root specs).

use crate::erased::{DurableDs, ErasedDs};
use crate::heap::ModHeap;
use crate::parent;
use mod_alloc::NvHeap;
use std::fmt;
use std::marker::PhantomData;

/// The root slot that holds the root directory parent object. Raw-slot
/// code (e.g. legacy pools from pre-0.3 binaries) must not use this
/// slot.
pub const ROOT_DIR_SLOT: usize = mod_alloc::N_ROOTS - 1;

/// A typed handle to a persistent datastructure root: an index into the
/// root directory plus the compile-time datastructure type.
///
/// `Root<D>` is `Copy` and survives across FASEs — it names the *slot*,
/// not a version. The currently published version is read with
/// [`ModHeap::current`] (or inside a FASE with [`crate::Fase::current`]),
/// and updated through [`ModHeap::fase`].
pub struct Root<D: DurableDs> {
    index: usize,
    _ds: PhantomData<fn() -> D>,
}

impl<D: DurableDs> Root<D> {
    pub(crate) fn new(index: usize) -> Root<D> {
        Root {
            index,
            _ds: PhantomData,
        }
    }

    /// The directory index of this root (stable for the pool's lifetime;
    /// what applications persist in config to re-open roots by).
    pub fn index(&self) -> usize {
        self.index
    }
}

impl<D: DurableDs> Clone for Root<D> {
    fn clone(&self) -> Root<D> {
        *self
    }
}

impl<D: DurableDs> Copy for Root<D> {}

impl<D: DurableDs> PartialEq for Root<D> {
    fn eq(&self, other: &Root<D>) -> bool {
        self.index == other.index
    }
}

impl<D: DurableDs> Eq for Root<D> {}

impl<D: DurableDs> fmt::Debug for Root<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Root<{:?}>({})", D::KIND, self.index)
    }
}

/// Reads one directory entry without materializing the whole directory
/// (typed reads are hot: every `current`/`update` resolves a root).
pub(crate) fn peek_entry(nv: &NvHeap, index: usize) -> Option<ErasedDs> {
    let dir = nv.peek_root(ROOT_DIR_SLOT);
    if dir.is_null() {
        return None;
    }
    let count = nv.peek_u64(dir.addr()) as usize;
    if index >= count {
        return None;
    }
    let base = dir.addr() + 8 + 16 * index as u64;
    Some(ErasedDs {
        kind: crate::erased::RootKind::from_u64(nv.peek_u64(base)),
        root: mod_pmem::PmPtr::from_addr(nv.peek_u64(base + 8)),
    })
}

/// Materializes every directory entry in index order — the commit stage
/// uses this to build an immutable [`crate::snapshot::DirSnapshot`] from
/// the just-swung directory (runs under the commit lock, so the
/// directory is stable for the duration).
pub(crate) fn all_entries(nv: &NvHeap) -> Vec<ErasedDs> {
    let dir = nv.peek_root(ROOT_DIR_SLOT);
    if dir.is_null() {
        return Vec::new();
    }
    let count = nv.peek_u64(dir.addr()) as usize;
    (0..count)
        .map(|i| {
            let base = dir.addr() + 8 + 16 * i as u64;
            ErasedDs {
                kind: crate::erased::RootKind::from_u64(nv.peek_u64(base)),
                root: mod_pmem::PmPtr::from_addr(nv.peek_u64(base + 8)),
            }
        })
        .collect()
}

impl ModHeap {
    /// Publishes the initial version of a datastructure as a new typed
    /// root, returning its handle. One FASE, one ordering point.
    ///
    /// Ownership of `initial` transfers to the root directory; read it
    /// back later with [`ModHeap::current`].
    pub fn publish<D: DurableDs>(&mut self, initial: D) -> Root<D> {
        self.publish_tagged(initial, 0)
    }

    /// [`ModHeap::publish`] with a codec-discipline tag word persisted in
    /// the directory entry (see [`crate::codec::codec_word_kv`]); the
    /// typed wrappers use it so reopening with mismatched key/value
    /// codecs is rejected. Tag 0 means "no codec recorded".
    pub fn publish_tagged<D: DurableDs>(&mut self, initial: D, tag: u64) -> Root<D> {
        let dir = self.nv_mut().read_root(ROOT_DIR_SLOT);
        let (mut children, mut tags) = if dir.is_null() {
            (Vec::new(), Vec::new())
        } else {
            (
                parent::children_of(self.nv_mut(), dir),
                parent::peek_tags_of(self.nv(), dir),
            )
        };
        let index = children.len();
        children.push(initial.erase());
        tags.push(tag);
        self.swing_directory(dir, &children, &[initial.erase()], &tags);
        Root::new(index)
    }

    /// [`ModHeap::publish_tagged`] for entries whose kind has no typed
    /// handle — hybrid roots publish their spine head under
    /// [`crate::RootKind::Spine`]. Returns the new directory index.
    pub(crate) fn publish_erased_tagged(&mut self, initial: ErasedDs, tag: u64) -> usize {
        let dir = self.nv_mut().read_root(ROOT_DIR_SLOT);
        let (mut children, mut tags) = if dir.is_null() {
            (Vec::new(), Vec::new())
        } else {
            (
                parent::children_of(self.nv_mut(), dir),
                parent::peek_tags_of(self.nv(), dir),
            )
        };
        let index = children.len();
        children.push(initial);
        tags.push(tag);
        self.swing_directory(dir, &children, &[initial], &tags);
        index
    }

    /// The codec tag word recorded for directory entry `index` (0 when
    /// none was recorded or the index does not exist).
    pub fn root_codec_tag(&self, index: usize) -> u64 {
        let dir = self.nv().peek_root(ROOT_DIR_SLOT);
        if dir.is_null() || index >= self.root_count() {
            return 0;
        }
        parent::peek_tag_of(self.nv(), dir, index)
    }

    /// Number of published typed roots.
    pub fn root_count(&self) -> usize {
        let dir = self.nv().peek_root(ROOT_DIR_SLOT);
        if dir.is_null() {
            0
        } else {
            self.nv().peek_u64(dir.addr()) as usize
        }
    }

    /// Re-opens the typed root at `index` after recovery, checking that
    /// the persistently recorded kind matches `D`.
    ///
    /// # Panics
    ///
    /// Panics if the index was never published or the stored kind differs
    /// from `D::KIND` — opening a map as a queue is a bug, not a crash
    /// state, and is caught here instead of corrupting a traversal.
    pub fn open_root<D: DurableDs>(&self, index: usize) -> Root<D> {
        match self.try_open_root(index) {
            Some(root) => root,
            None => panic!(
                "no root published at directory index {index} ({} roots exist)",
                self.root_count()
            ),
        }
    }

    /// Re-opens the typed root at `index`, or `None` if no root was ever
    /// published there.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch (see [`ModHeap::open_root`]).
    pub fn try_open_root<D: DurableDs>(&self, index: usize) -> Option<Root<D>> {
        let entry = peek_entry(self.nv(), index)?;
        assert_eq!(
            entry.kind,
            D::KIND,
            "root {index} holds a {:?}, not a {:?}",
            entry.kind,
            D::KIND
        );
        Some(Root::new(index))
    }

    /// The currently published version of `root` (a pure, immutable
    /// handle). Reads only — no exclusive access, no simulated charges.
    pub fn current<D: DurableDs>(&self, root: Root<D>) -> D {
        current_of(self.nv(), root)
    }
}

/// Read-only view helper shared with [`crate::Fase`].
pub(crate) fn current_of<D: DurableDs>(nv: &NvHeap, root: Root<D>) -> D {
    let entry = peek_entry(nv, root.index())
        .unwrap_or_else(|| panic!("root {} not in directory", root.index()));
    debug_assert_eq!(entry.kind, D::KIND);
    D::from_root_ptr(entry.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_funcds::{PmMap, PmQueue};
    use mod_pmem::{Pmem, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn publish_returns_sequential_indices() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let q0 = PmQueue::empty(h.nv_mut());
        let m = h.publish(m0);
        let q = h.publish(q0);
        assert_eq!(m.index(), 0);
        assert_eq!(q.index(), 1);
        assert_eq!(h.root_count(), 2);
    }

    #[test]
    fn publish_costs_one_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let fences = h.nv().pm().stats().fences;
        h.publish(m0);
        assert_eq!(h.nv().pm().stats().fences - fences, 1);
    }

    #[test]
    fn current_reads_published_version_without_charges() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 3, b"three");
        let root = h.publish(m0);
        let reads = h.nv().pm().stats().reads;
        let cur = h.current(root);
        assert_eq!(cur.root(), m0.root());
        assert_eq!(cur.peek_get(h.nv(), 3), Some(b"three".to_vec()));
        assert_eq!(h.nv().pm().stats().reads, reads, "peek path is free");
    }

    #[test]
    fn open_root_checks_kind() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let r = h.publish(m0);
        let reopened: Root<PmMap> = h.open_root(r.index());
        assert_eq!(reopened, r);
        assert!(h.try_open_root::<PmMap>(7).is_none());
    }

    #[test]
    #[should_panic(expected = "not a")]
    fn open_root_rejects_wrong_kind() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish(m0);
        let _ = h.open_root::<PmQueue>(0);
    }
}
