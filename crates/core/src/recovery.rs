//! Crash recovery (paper §5.2, §5.3).
//!
//! Opening a pool after a crash performs, in order:
//!
//! 1. **Unrelated-commit redo** — if the short transaction of Fig 8d had
//!    reached its commit point (log state = committed), its slot stores
//!    are re-applied idempotently and the log retired.
//! 2. **Reachability GC** — every datastructure named in the caller's
//!    root directory is walked from its slot, marking live blocks and
//!    counting references (rebuilding the volatile refcounts the paper
//!    deliberately never flushes). Everything unmarked — including shadow
//!    nodes leaked by a FASE the crash interrupted — becomes free space.
//!
//! GC time is charged to the simulated clock: the paper includes recovery
//! garbage collection in its measured results.

use crate::erased::{ErasedDs, RootKind};
use crate::heap::{ModHeap, ULOG_COMMITTED, ULOG_COUNT, ULOG_ENTRIES, ULOG_STATE};
use mod_alloc::{NvHeap, RecoveryReport};
use mod_pmem::{PmPtr, Pmem};

/// A root directory entry: which datastructure type lives in which slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RootSpec {
    /// Root slot index.
    pub slot: usize,
    /// Type of the structure the slot points at.
    pub kind: RootKind,
}

impl RootSpec {
    /// Convenience constructor.
    pub fn new(slot: usize, kind: RootKind) -> RootSpec {
        RootSpec { slot, kind }
    }
}

impl ModHeap {
    /// Opens a (possibly crashed) pool and recovers it: redoes any
    /// committed unrelated-commit log, walks every typed root reachable
    /// from the root directory (whose entries carry their own
    /// [`RootKind`] — no caller-supplied specs needed), rebuilds the
    /// volatile refcounts, and sweeps everything unreachable (including
    /// shadows leaked by an interrupted FASE) back into free space.
    ///
    /// Reattach to structures with [`ModHeap::open_root`] /
    /// [`ModHeap::try_open_root`].
    ///
    /// # Panics
    ///
    /// Panics if the pool is not a formatted MOD pool or its live blocks
    /// fail integrity checks.
    pub fn open(pm: Pmem) -> (ModHeap, RecoveryReport) {
        recover_impl(pm, &[])
    }
}

/// Recovers a MOD heap from a (possibly crashed) pool, marking the given
/// raw root slots in addition to the typed root directory.
///
/// `roots` declares the application's raw-slot datastructures. Null slots
/// are skipped, so passing the full directory of an app that crashed
/// before creating some structures is fine.
///
/// # Panics
///
/// Panics if the pool is not a formatted MOD pool or its live blocks fail
/// integrity checks.
#[deprecated(
    since = "0.2.0",
    note = "use `ModHeap::open` — the typed root directory is self-describing"
)]
pub fn recover(pm: Pmem, roots: &[RootSpec]) -> (ModHeap, RecoveryReport) {
    recover_impl(pm, roots)
}

fn recover_impl(pm: Pmem, roots: &[RootSpec]) -> (ModHeap, RecoveryReport) {
    let mut nv = NvHeap::open(pm);
    redo_unrelated_log(&mut nv);
    // The typed root directory is self-describing: marking its parent
    // object cascades to every typed root.
    let dir = nv.read_root(crate::root::ROOT_DIR_SLOT);
    if !dir.is_null() {
        ErasedDs {
            kind: RootKind::Parent,
            root: dir,
        }
        .mark(&mut nv);
    }
    for spec in roots {
        let root = nv.read_root(spec.slot);
        if root.is_null() {
            continue;
        }
        ErasedDs {
            kind: spec.kind,
            root,
        }
        .mark(&mut nv);
    }
    let report = nv.finish_recovery();
    (ModHeap::from_parts(nv), report)
}

fn redo_unrelated_log(nv: &mut NvHeap) {
    let pm = nv.pm_mut();
    if pm.read_u64(ULOG_STATE) != ULOG_COMMITTED {
        return;
    }
    // The commit point was reached: every (slot, root) entry is durable
    // (they were fenced before the state flag). Re-apply them all.
    let count = pm.read_u64(ULOG_COUNT);
    pm.begin_commit();
    for i in 0..count {
        let base = ULOG_ENTRIES + 16 * i;
        let slot = pm.read_u64(base) as usize;
        let root = pm.read_u64(base + 8);
        let addr = mod_alloc::layout::root_slot_offset(slot);
        pm.write_u64(addr, root);
        pm.clwb(addr);
    }
    pm.write_u64(ULOG_STATE, 0);
    pm.clwb(ULOG_STATE);
    pm.sfence();
    pm.end_commit();
}

/// Reads a typed handle back out of a recovered slot.
///
/// # Panics
///
/// Panics if the slot is null — the structure was never published, which
/// callers should handle by creating it afresh.
#[deprecated(
    since = "0.2.0",
    note = "use `ModHeap::open_root`, which checks the stored kind"
)]
pub fn root_handle<D: crate::erased::DurableDs>(heap: &mut ModHeap, slot: usize) -> D {
    let root = heap.read_root(slot);
    assert!(
        !root.is_null(),
        "slot {slot} is empty; create the structure"
    );
    D::from_root_ptr(root)
}

/// Reads a typed handle if the slot is non-null.
#[deprecated(
    since = "0.2.0",
    note = "use `ModHeap::try_open_root`, which checks the stored kind"
)]
pub fn try_root_handle<D: crate::erased::DurableDs>(heap: &mut ModHeap, slot: usize) -> Option<D> {
    let root = heap.read_root(slot);
    (!root.is_null()).then(|| D::from_root_ptr(root))
}

/// Looks up a parent object's children after recovery (CommitSiblings
/// pattern): returns the erased child handles in parent order.
#[deprecated(
    since = "0.2.0",
    note = "typed roots are directory entries; use `ModHeap::open_root` per structure"
)]
pub fn parent_children(heap: &mut ModHeap, slot: usize) -> Vec<ErasedDs> {
    let parent = heap.read_root(slot);
    assert!(!parent.is_null(), "slot {slot} holds no parent object");
    crate::parent::children_of(heap.nv_mut(), parent)
}

/// The null pointer, re-exported for root-directory code readability.
pub const NULL_ROOT: PmPtr = PmPtr::NULL;

#[cfg(test)]
#[allow(deprecated)] // exercises the deprecated raw-slot recovery path
mod tests {
    use super::*;
    use crate::erased::DurableDs;
    use mod_funcds::{PmMap, PmQueue, PmStack, PmVector};
    use mod_pmem::{CrashPolicy, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    fn crash(h: ModHeap, policy: CrashPolicy) -> Pmem {
        h.into_pm().crash_image(policy)
    }

    #[test]
    fn recover_committed_map() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let m1 = m0.insert(h.nv_mut(), 10, b"ten");
        h.commit_single(0, m0, &[], m1);
        h.quiesce(); // slot store durable
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, report) = recover(pm, &[RootSpec::new(0, RootKind::Map)]);
        assert!(report.live_blocks > 0);
        let m: PmMap = root_handle(&mut h2, 0);
        assert_eq!(m.get(h2.nv_mut(), 10), Some(b"ten".to_vec()));
        assert_eq!(m.len(h2.nv_mut()), 1);
    }

    #[test]
    fn crash_mid_fase_recovers_old_version_and_reclaims_shadow() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let m1 = m0.insert(h.nv_mut(), 1, b"committed");
        h.commit_single(0, m0, &[], m1);
        h.quiesce();
        let live_at_commit = h.nv().stats().live_bytes;
        // FASE interrupted: shadow built and flushed, commit never runs.
        let _shadow = m1.insert(h.nv_mut(), 2, b"lost");
        let pm = crash(h, CrashPolicy::PersistAll); // even fully persisted
        let (mut h2, report) = recover(pm, &[RootSpec::new(0, RootKind::Map)]);
        let m: PmMap = root_handle(&mut h2, 0);
        assert_eq!(m.get(h2.nv_mut(), 1), Some(b"committed".to_vec()));
        assert_eq!(m.get(h2.nv_mut(), 2), None, "uncommitted update invisible");
        // The shadow's blocks were leaked by the crash and swept by GC.
        assert_eq!(report.live_bytes, live_at_commit);
    }

    #[test]
    fn adversarial_crash_during_fase_yields_old_or_nothing_new() {
        // Whatever subset of unfenced lines persists, recovery must see
        // the committed version only.
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, m0);
        let mut cur = m0;
        for i in 0..10u64 {
            let next = cur.insert(h.nv_mut(), i, &i.to_le_bytes());
            h.commit_single(0, cur, &[], next);
            cur = next;
        }
        h.quiesce();
        let _shadow = cur.insert(h.nv_mut(), 99, b"inflight");
        for seed in 0..20u64 {
            let pm = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
            let (mut h2, _) = recover(pm, &[RootSpec::new(0, RootKind::Map)]);
            let m: PmMap = root_handle(&mut h2, 0);
            assert_eq!(m.len(h2.nv_mut()), 10, "seed {seed}");
            for i in 0..10u64 {
                assert_eq!(
                    m.get(h2.nv_mut(), i),
                    Some(i.to_le_bytes().to_vec()),
                    "seed {seed} key {i}"
                );
            }
            assert!(!m.contains_key(h2.nv_mut(), 99));
        }
    }

    #[test]
    fn unrelated_log_redo_applies_after_commit_point() {
        let mut h = mh();
        let a0 = PmMap::empty(h.nv_mut());
        let b0 = PmStack::empty(h.nv_mut());
        h.publish_root(0, a0);
        h.publish_root(1, b0);
        h.quiesce();
        let a1 = a0.insert(h.nv_mut(), 1, b"x");
        let b1 = b0.push(h.nv_mut(), 7);
        // Simulate the commit reaching its commit point but crashing
        // before the slot stores: write the log exactly as
        // commit_unrelated does, fence, set committed, fence, crash.
        {
            let pm = h.nv_mut().pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_COUNT, 2);
            pm.write_u64(ULOG_ENTRIES, 0);
            pm.write_u64(ULOG_ENTRIES + 8, a1.root_ptr().addr());
            pm.write_u64(ULOG_ENTRIES + 16, 1);
            pm.write_u64(ULOG_ENTRIES + 24, b1.root_ptr().addr());
            pm.flush_range(ULOG_COUNT, 8 + 32);
            pm.sfence();
            pm.write_u64(ULOG_STATE, ULOG_COMMITTED);
            pm.clwb(ULOG_STATE);
            pm.sfence();
            pm.end_commit();
        }
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(
            pm,
            &[
                RootSpec::new(0, RootKind::Map),
                RootSpec::new(1, RootKind::Stack),
            ],
        );
        let a: PmMap = root_handle(&mut h2, 0);
        let b: PmStack = root_handle(&mut h2, 1);
        assert_eq!(a.get(h2.nv_mut(), 1), Some(b"x".to_vec()), "redo applied");
        assert_eq!(b.peek(h2.nv_mut()), Some(7), "redo applied to stack too");
        assert_eq!(h2.nv_mut().pm_mut().read_u64(ULOG_STATE), 0, "log retired");
    }

    #[test]
    fn unrelated_log_ignored_before_commit_point() {
        let mut h = mh();
        let a0 = PmMap::empty(h.nv_mut());
        h.publish_root(0, a0);
        h.quiesce();
        let a1 = a0.insert(h.nv_mut(), 5, b"new");
        // Log written and fenced, but state flag never set.
        {
            let pm = h.nv_mut().pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_COUNT, 1);
            pm.write_u64(ULOG_ENTRIES, 0);
            pm.write_u64(ULOG_ENTRIES + 8, a1.root_ptr().addr());
            pm.flush_range(ULOG_COUNT, 24);
            pm.sfence();
            pm.end_commit();
        }
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(pm, &[RootSpec::new(0, RootKind::Map)]);
        let a: PmMap = root_handle(&mut h2, 0);
        assert!(!a.contains_key(h2.nv_mut(), 5), "uncommitted tx discarded");
    }

    #[test]
    fn recover_all_five_kinds() {
        let mut h = mh();
        let m = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"m");
        let s = {
            let s0 = mod_funcds::PmSet::empty(h.nv_mut());
            s0.insert(h.nv_mut(), 2).0
        };
        let v = PmVector::from_slice(h.nv_mut(), &[10, 20, 30]);
        let st = PmStack::empty(h.nv_mut()).push(h.nv_mut(), 4);
        let q = PmQueue::empty(h.nv_mut()).enqueue(h.nv_mut(), 5);
        h.publish_root(0, m);
        h.publish_root(1, s);
        h.publish_root(2, v);
        h.publish_root(3, st);
        h.publish_root(4, q);
        h.quiesce();
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(
            pm,
            &[
                RootSpec::new(0, RootKind::Map),
                RootSpec::new(1, RootKind::Set),
                RootSpec::new(2, RootKind::Vector),
                RootSpec::new(3, RootKind::Stack),
                RootSpec::new(4, RootKind::Queue),
            ],
        );
        let m: PmMap = root_handle(&mut h2, 0);
        let s: mod_funcds::PmSet = root_handle(&mut h2, 1);
        let v: PmVector = root_handle(&mut h2, 2);
        let st: PmStack = root_handle(&mut h2, 3);
        let q: PmQueue = root_handle(&mut h2, 4);
        assert_eq!(m.get(h2.nv_mut(), 1), Some(b"m".to_vec()));
        assert!(s.contains(h2.nv_mut(), 2));
        assert_eq!(v.to_vec(h2.nv_mut()), vec![10, 20, 30]);
        assert_eq!(st.peek(h2.nv_mut()), Some(4));
        assert_eq!(q.peek(h2.nv_mut()), Some(5));
    }

    #[test]
    fn recover_parent_slot() {
        let mut h = mh();
        let m = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"one");
        let q = PmQueue::empty(h.nv_mut()).enqueue(h.nv_mut(), 2);
        h.commit_siblings(
            7,
            NULL_ROOT,
            &[m.erase(), q.erase()],
            &[m.erase(), q.erase()],
        );
        h.quiesce();
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(pm, &[RootSpec::new(7, RootKind::Parent)]);
        let kids = parent_children(&mut h2, 7);
        assert_eq!(kids.len(), 2);
        let m = PmMap::from_root(kids[0].root);
        let q = PmQueue::from_root(kids[1].root);
        assert_eq!(m.get(h2.nv_mut(), 1), Some(b"one".to_vec()));
        assert_eq!(q.peek(h2.nv_mut()), Some(2));
    }

    #[test]
    fn empty_slots_are_skipped() {
        let h = mh();
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (mut h2, report) = recover(
            pm,
            &[
                RootSpec::new(0, RootKind::Map),
                RootSpec::new(1, RootKind::Queue),
            ],
        );
        assert_eq!(report.live_blocks, 0);
        assert!(try_root_handle::<PmMap>(&mut h2, 0).is_none());
    }
}
