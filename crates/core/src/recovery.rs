//! Crash recovery (paper §5.2, §5.3).
//!
//! Opening a pool after a crash performs, in order:
//!
//! 1. **Unrelated-commit redo** — if the short redo-logged transaction of
//!    Fig 8d (written by pre-0.3 binaries; the typed FASE path never
//!    needs it) had reached its commit point (log state = committed), its
//!    slot stores are re-applied idempotently and the log retired.
//! 2. **Reachability GC** — every datastructure named in the typed root
//!    directory is walked from its entry, marking live blocks and
//!    counting references (rebuilding the volatile refcounts the paper
//!    deliberately never flushes). Everything unmarked — including shadow
//!    nodes leaked by a FASE the crash interrupted — becomes free space.
//!
//! GC time is charged to the simulated clock: the paper includes recovery
//! garbage collection in its measured results.
//!
//! The spec-based entry points (`recover` with `RootSpec` lists,
//! `root_handle`, `parent_children`) were removed in 0.3: the root
//! directory is self-describing, so [`ModHeap::open`] +
//! [`ModHeap::open_root`] replace them with kind-checked equivalents.
//! Consequently only directory-reachable structures survive GC:
//! raw-slot structures from a pre-0.3 pool must be republished through
//! the typed API (using a 0.2 binary) *before* upgrading, or recovery
//! sweeps them as garbage. The Fig 8d log redo is kept so a pool that
//! crashed mid-`commit_unrelated` at least replays its slot stores
//! deterministically.

use crate::erased::{ErasedDs, RootKind};
use crate::heap::{ModHeap, ULOG_COMMITTED, ULOG_COUNT, ULOG_ENTRIES, ULOG_STATE};
use mod_alloc::{NvHeap, RecoveryReport};
use mod_pmem::Pmem;

impl ModHeap {
    /// Opens a (possibly crashed) pool and recovers it: redoes any
    /// committed legacy unrelated-commit log, walks every typed root
    /// reachable from the root directory (whose entries carry their own
    /// [`RootKind`] — no caller-supplied specs needed), rebuilds the
    /// volatile refcounts, and sweeps everything unreachable (including
    /// shadows leaked by an interrupted FASE) back into free space.
    ///
    /// Reattach to structures with [`ModHeap::open_root`] /
    /// [`ModHeap::try_open_root`].
    ///
    /// # Panics
    ///
    /// Panics if the pool is not a formatted MOD pool or its live blocks
    /// fail integrity checks.
    pub fn open(pm: Pmem) -> (ModHeap, RecoveryReport) {
        let mut nv = NvHeap::open(pm);
        redo_unrelated_log(&mut nv);
        // The typed root directory is self-describing: marking its parent
        // object cascades to every typed root.
        let dir = nv.read_root(crate::root::ROOT_DIR_SLOT);
        if !dir.is_null() {
            ErasedDs {
                kind: RootKind::Parent,
                root: dir,
            }
            .mark(&mut nv);
        }
        let report = nv.finish_recovery();
        let mut heap = ModHeap::from_parts(nv);
        // Hybrid ("Don't Persist All") roots: their interior nodes were
        // volatile and died with the crash; replay each spine into a
        // fresh volatile index (§ Don't Persist All recovery contract).
        heap.rebuild_hybrid_roots();
        (heap, report)
    }

    /// Opens and recovers a **file-backed** pool written by a previous
    /// process (or process lifetime): the pool file's snapshot and every
    /// complete journaled fence are replayed into a fresh arena (a torn
    /// tail — a record the dying process never finished — is discarded,
    /// so the image lands on the last complete fence), and then the
    /// exact same typed recovery as [`ModHeap::open`] runs against that
    /// disk image: legacy log redo, root-directory walk, refcount
    /// rebuild, reachability sweep.
    pub fn open_file(
        path: &std::path::Path,
        cfg: mod_pmem::PmemConfig,
    ) -> std::io::Result<(ModHeap, RecoveryReport)> {
        Ok(ModHeap::open(Pmem::open_file(path, cfg)?))
    }
}

fn redo_unrelated_log(nv: &mut NvHeap) {
    let pm = nv.pm_mut();
    if pm.read_u64(ULOG_STATE) != ULOG_COMMITTED {
        return;
    }
    // The commit point was reached: every (slot, root) entry is durable
    // (they were fenced before the state flag). Re-apply them all.
    let count = pm.read_u64(ULOG_COUNT);
    pm.begin_commit();
    for i in 0..count {
        let base = ULOG_ENTRIES + 16 * i;
        let slot = pm.read_u64(base) as usize;
        let root = pm.read_u64(base + 8);
        let addr = mod_alloc::layout::root_slot_offset(slot);
        pm.write_u64(addr, root);
        pm.clwb(addr);
    }
    pm.write_u64(ULOG_STATE, 0);
    pm.clwb(ULOG_STATE);
    pm.sfence();
    pm.end_commit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Root;
    use mod_funcds::{PmMap, PmQueue, PmSet, PmStack, PmVector};
    use mod_pmem::{CrashPolicy, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    fn crash(h: ModHeap, policy: CrashPolicy) -> Pmem {
        h.into_pm().crash_image(policy)
    }

    #[test]
    fn recover_committed_map() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 10, b"ten")));
        h.quiesce(); // directory-entry store durable
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (h2, report) = ModHeap::open(pm);
        assert!(report.live_blocks > 0);
        let map: Root<PmMap> = h2.open_root(0);
        let cur = h2.current(map);
        assert_eq!(cur.peek_get(h2.nv(), 10), Some(b"ten".to_vec()));
        assert_eq!(cur.peek_len(h2.nv()), 1);
    }

    #[test]
    fn crash_mid_fase_recovers_old_version_and_reclaims_shadow() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"committed")));
        h.quiesce();
        let live_at_commit = h.nv().stats().live_bytes;
        // FASE interrupted: shadow built and flushed, commit never runs.
        let cur = h.current(map);
        let _shadow = cur.insert(h.nv_mut(), 2, b"lost");
        let pm = crash(h, CrashPolicy::PersistAll); // even fully persisted
        let (h2, report) = ModHeap::open(pm);
        let map: Root<PmMap> = h2.open_root(0);
        let cur = h2.current(map);
        assert_eq!(cur.peek_get(h2.nv(), 1), Some(b"committed".to_vec()));
        assert_eq!(
            cur.peek_get(h2.nv(), 2),
            None,
            "uncommitted update invisible"
        );
        // The shadow's blocks were leaked by the crash and swept by GC.
        assert_eq!(report.live_bytes, live_at_commit);
    }

    #[test]
    fn adversarial_crash_during_fase_yields_old_or_nothing_new() {
        // Whatever subset of unfenced lines persists, recovery must see
        // the committed version only.
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        for i in 0..10u64 {
            h.fase(|tx| tx.update(map, move |nv, m| m.insert(nv, i, &i.to_le_bytes())));
        }
        h.quiesce();
        let cur = h.current(map);
        let _shadow = cur.insert(h.nv_mut(), 99, b"inflight");
        for seed in 0..20u64 {
            let pm = h.nv().pm().crash_image(CrashPolicy::Seeded(seed));
            let (h2, _) = ModHeap::open(pm);
            let map: Root<PmMap> = h2.open_root(0);
            let cur = h2.current(map);
            assert_eq!(cur.peek_len(h2.nv()), 10, "seed {seed}");
            for i in 0..10u64 {
                assert_eq!(
                    cur.peek_get(h2.nv(), i),
                    Some(i.to_le_bytes().to_vec()),
                    "seed {seed} key {i}"
                );
            }
            assert_eq!(cur.peek_get(h2.nv(), 99), None);
        }
    }

    #[test]
    fn unrelated_log_redo_applies_after_commit_point() {
        // A pool written by a pre-0.3 binary that crashed between the
        // Fig 8d commit point and its slot stores: the log must be
        // redone. The log is written here exactly as the removed
        // commit_unrelated did.
        let mut h = mh();
        let a1 = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"x");
        let b1 = PmStack::empty(h.nv_mut()).push(h.nv_mut(), 7);
        // Raw-slot roots (slots 0 and 1 are outside the typed directory).
        use crate::erased::DurableDs;
        {
            let pm = h.nv_mut().pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_COUNT, 2);
            pm.write_u64(ULOG_ENTRIES, 0);
            pm.write_u64(ULOG_ENTRIES + 8, a1.root_ptr().addr());
            pm.write_u64(ULOG_ENTRIES + 16, 1);
            pm.write_u64(ULOG_ENTRIES + 24, b1.root_ptr().addr());
            pm.flush_range(ULOG_COUNT, 8 + 32);
            pm.sfence();
            pm.write_u64(ULOG_STATE, ULOG_COMMITTED);
            pm.clwb(ULOG_STATE);
            pm.sfence();
            pm.end_commit();
        }
        let pm = crash(h, CrashPolicy::OnlyFenced);
        // Redo happens inside open(); the typed directory is empty, so
        // GC would sweep the raw-slot structures — inspect the redo
        // before GC by reading the slots straight off the redone pool.
        let mut nv = NvHeap::open(pm);
        super::redo_unrelated_log(&mut nv);
        assert_eq!(
            nv.read_root(0).addr(),
            a1.root_ptr().addr(),
            "redo applied to slot 0"
        );
        assert_eq!(
            nv.read_root(1).addr(),
            b1.root_ptr().addr(),
            "redo applied to slot 1"
        );
        assert_eq!(nv.pm_mut().read_u64(ULOG_STATE), 0, "log retired");
    }

    #[test]
    fn unrelated_log_ignored_before_commit_point() {
        let mut h = mh();
        let a1 = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 5, b"new");
        use crate::erased::DurableDs;
        // Log written and fenced, but state flag never set.
        {
            let pm = h.nv_mut().pm_mut();
            pm.begin_commit();
            pm.write_u64(ULOG_COUNT, 1);
            pm.write_u64(ULOG_ENTRIES, 0);
            pm.write_u64(ULOG_ENTRIES + 8, a1.root_ptr().addr());
            pm.flush_range(ULOG_COUNT, 24);
            pm.sfence();
            pm.end_commit();
        }
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(pm);
        assert!(
            h2.nv().peek_root(0).is_null(),
            "uncommitted legacy tx discarded"
        );
    }

    #[test]
    fn recover_all_five_kinds() {
        let mut h = mh();
        let m = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"m");
        let s = {
            let s0 = PmSet::empty(h.nv_mut());
            s0.insert(h.nv_mut(), 2).0
        };
        let v = PmVector::from_slice(h.nv_mut(), &[10, 20, 30]);
        let st = PmStack::empty(h.nv_mut()).push(h.nv_mut(), 4);
        let q = PmQueue::empty(h.nv_mut()).enqueue(h.nv_mut(), 5);
        h.publish(m);
        h.publish(s);
        h.publish(v);
        h.publish(st);
        h.publish(q);
        h.quiesce();
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (h2, _) = ModHeap::open(pm);
        let m: Root<PmMap> = h2.open_root(0);
        let s: Root<PmSet> = h2.open_root(1);
        let v: Root<PmVector> = h2.open_root(2);
        let st: Root<PmStack> = h2.open_root(3);
        let q: Root<PmQueue> = h2.open_root(4);
        assert_eq!(h2.current(m).peek_get(h2.nv(), 1), Some(b"m".to_vec()));
        assert!(h2.current(s).peek_contains(h2.nv(), 2));
        assert_eq!(h2.current(v).peek_to_vec(h2.nv()), vec![10, 20, 30]);
        assert_eq!(h2.current(st).peek_top(h2.nv()), Some(4));
        assert_eq!(h2.current(q).peek_front(h2.nv()), Some(5));
    }

    #[test]
    fn empty_pool_recovers_empty() {
        let h = mh();
        let pm = crash(h, CrashPolicy::OnlyFenced);
        let (h2, report) = ModHeap::open(pm);
        assert_eq!(report.live_blocks, 0);
        assert_eq!(h2.root_count(), 0);
        assert!(h2.try_open_root::<PmMap>(0).is_none());
    }
}
