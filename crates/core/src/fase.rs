//! Closure-based failure-atomic sections (FASEs).
//!
//! [`ModHeap::fase`] is the write path of the typed API: the closure
//! receives a [`Fase`] transaction handle and stages pure shadow updates
//! against any number of typed roots; when the closure returns, all
//! staged updates are published together with **exactly one ordering
//! point** (one `sfence` + one atomic 8-byte pointer store — the paper's
//! Fig 8 headline, now for arbitrary multi-structure FASEs via the root
//! directory).
//!
//! ```
//! use mod_core::ModHeap;
//! use mod_funcds::{PmMap, PmQueue};
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
//! let m0 = PmMap::empty(heap.nv_mut());
//! let q0 = PmQueue::empty(heap.nv_mut());
//! let map = heap.publish(m0);
//! let queue = heap.publish(q0);
//!
//! // One FASE over two structures: move a work item into the map.
//! heap.fase(|tx| {
//!     tx.update(map, |nv, m| m.insert(nv, 42, b"payload"));
//!     tx.update(queue, |nv, q| q.enqueue(nv, 42));
//! });
//! assert_eq!(heap.current(map).peek_get(heap.nv(), 42), Some(b"payload".to_vec()));
//! ```
//!
//! Within one FASE, repeated updates to the same root chain: the second
//! closure sees the first's shadow, and superseded intra-FASE shadows
//! (Fig 7b's `shadow_shadow` pattern) are reclaimed right after commit.
//! A FASE that stages nothing — or whose updates all return the version
//! they were given — commits nothing and costs no ordering point.
//!
//! If the closure panics, nothing is published: the staged shadows are
//! dropped (their blocks are reclaimed by GC on the next recovery, like
//! any crash-interrupted FASE) and the heap's committed state is intact.

use crate::erased::{DurableDs, ErasedDs, RootKind};
use crate::heap::ModHeap;
use crate::parent;
use crate::root::{current_of, Root, ROOT_DIR_SLOT};
use crate::spine::{self, SpineOp, COMPACT_FACTOR, COMPACT_MIN_OPS};
use mod_alloc::NvHeap;
use mod_pmem::{PmPtr, Pmem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One staged root update inside a FASE (or a pipelined batch of FASEs).
#[derive(Debug)]
pub(crate) struct PendingUpdate {
    pub(crate) index: usize,
    pub(crate) kind: RootKind,
    /// The shadow that will be published for this root.
    pub(crate) new: PmPtr,
    /// Shadows superseded by later updates to the same root in this FASE
    /// (never published; reclaimed immediately after commit).
    pub(crate) intermediates: Vec<ErasedDs>,
    /// For hybrid roots (`kind == RootKind::Spine`): the volatile-index
    /// version that accompanies the staged spine record. Published to
    /// the root annex when the record commits.
    pub(crate) hybrid: Option<HybridUpdate>,
}

/// The volatile half of a staged hybrid-root update.
#[derive(Debug)]
pub(crate) struct HybridUpdate {
    /// The root's logical datastructure kind (the directory says
    /// `Spine`; this says what the spine encodes).
    pub(crate) logical: RootKind,
    /// Root address of the new volatile-index version.
    pub(crate) new_v: u64,
}

/// Maximum directory indices the concurrent staging path supports.
pub(crate) const STAGING_LANES: usize = 256;

/// Per-root staging lanes for lock-free concurrent FASEs.
///
/// Pure shadow building needs no coordination at all — each worker
/// allocates and writes in its own arena. The *only* shared staging
/// state is, per root, "which version does the next FASE chain from":
/// the lane `head`. A FASE's first update to a root takes that root's
/// lane lock and holds it until the FASE is handed to the commit queue,
/// so same-root FASEs serialize (they are inherently dependent — the
/// later one must read the earlier one's shadow), while FASEs over
/// disjoint roots never touch the same lane and stage fully in
/// parallel. Lane heads are read lock-free (a relaxed atomic load) by
/// read-only `current` lookups.
///
/// Deadlock avoidance: lanes acquire in ascending root order for free;
/// an out-of-order acquisition spins on `try_lock` and, if the lane
/// stays contended, aborts the whole FASE (the staging driver rolls the
/// worker heap back and retries the closure).
#[derive(Debug)]
pub(crate) struct RootLanes {
    lanes: Box<[RootLane]>,
}

#[derive(Debug)]
struct RootLane {
    lock: Mutex<()>,
    /// Latest staged head for this root (pointer address; 0 = nothing
    /// staged since the lanes were created or last invalidated — read
    /// the published directory entry instead). After a batch commits,
    /// the head equals the published root pointer, so stale heads are
    /// never wrong, just redundant.
    head: AtomicU64,
    /// Hybrid roots only: the volatile-index root address staged
    /// alongside `head` (0 = none staged — read the root annex). Written
    /// under the lane lock together with `head`.
    aux: AtomicU64,
}

impl RootLanes {
    pub(crate) fn new() -> RootLanes {
        RootLanes {
            lanes: (0..STAGING_LANES)
                .map(|_| RootLane {
                    lock: Mutex::new(()),
                    head: AtomicU64::new(0),
                    aux: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn head(&self, index: usize) -> Option<PmPtr> {
        // Acquire pairs with the Release in `set_head`: a lock-free
        // reader that follows this pointer must see the shadow words
        // written before the head was published.
        match self.lanes[index].head.load(Ordering::Acquire) {
            0 => None,
            a => Some(PmPtr::from_addr(a)),
        }
    }

    /// Publishes a staged head. Caller must hold the lane's lock.
    pub(crate) fn set_head(&self, index: usize, p: PmPtr) {
        self.lanes[index].head.store(p.addr(), Ordering::Release);
    }

    fn aux(&self, index: usize) -> u64 {
        self.lanes[index].aux.load(Ordering::Acquire)
    }

    /// Publishes a staged volatile head. Caller must hold the lane's lock.
    fn set_aux(&self, index: usize, addr: u64) {
        self.lanes[index].aux.store(addr, Ordering::Release);
    }

    /// Forgets all staged heads (single-threaded setup changed the
    /// published directory underneath them). Caller must guarantee no
    /// FASE is staged or in flight.
    pub(crate) fn clear_heads(&self) {
        for lane in self.lanes.iter() {
            lane.head.store(0, Ordering::Relaxed);
            lane.aux.store(0, Ordering::Relaxed);
        }
    }
}

/// Payload of the abort panic used to restart a FASE whose out-of-order
/// lane acquisition would risk deadlock.
pub(crate) struct LaneConflict;

/// An in-progress failure-atomic section over typed roots.
///
/// Created by [`ModHeap::fase`] (single-owner) or
/// [`crate::SharedModHeap::fase`] (a worker shard staging with no global
/// lock); stages pure updates via [`Fase::update`] and
/// [`Fase::update_with`]. Nothing becomes visible or durable until the
/// `fase` closure returns.
#[derive(Debug)]
pub struct Fase<'h> {
    nv: &'h mut NvHeap,
    pending: Vec<PendingUpdate>,
    staging: Option<StagingCtx<'h>>,
}

/// Worker-mode staging context: lane guards held by this FASE plus the
/// release work it must defer to the commit stage.
#[derive(Debug)]
struct StagingCtx<'h> {
    lanes: &'h RootLanes,
    held: Vec<(usize, MutexGuard<'h, ()>)>,
    /// Reverted chains to release at commit (a worker cannot touch
    /// foreign refcounts during staging).
    releases: Vec<ErasedDs>,
}

impl<'h> Fase<'h> {
    /// A single-owner FASE (the [`ModHeap::fase`] path).
    pub(crate) fn owner(nv: &'h mut NvHeap) -> Fase<'h> {
        Fase {
            nv,
            pending: Vec::new(),
            staging: None,
        }
    }

    /// A worker-shard FASE staging against `lanes` with no global lock.
    pub(crate) fn worker(nv: &'h mut NvHeap, lanes: &'h RootLanes) -> Fase<'h> {
        Fase {
            nv,
            pending: Vec::new(),
            staging: Some(StagingCtx {
                lanes,
                held: Vec::new(),
                releases: Vec::new(),
            }),
        }
    }

    /// Finishes a worker FASE: publishes the new staging-lane heads and
    /// hands back the staged updates + deferred releases. The lane
    /// guards stay held by this `Fase` — the caller pushes the handoff
    /// to the commit queue first and only then drops the `Fase`, so
    /// queue order respects per-root chaining order.
    pub(crate) fn finish_staging(&mut self) -> (Vec<PendingUpdate>, Vec<ErasedDs>) {
        let st = self.staging.as_mut().expect("finish_staging on owner FASE");
        for p in &self.pending {
            st.lanes.set_head(p.index, p.new);
            if let Some(h) = &p.hybrid {
                st.lanes.set_aux(p.index, h.new_v);
            }
        }
        (
            std::mem::take(&mut self.pending),
            std::mem::take(&mut st.releases),
        )
    }

    /// Ensures this FASE holds `index`'s staging lane (worker mode).
    fn hold_lane(&mut self, index: usize) {
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        if st.held.iter().any(|(i, _)| *i == index) {
            return;
        }
        assert!(
            index < STAGING_LANES,
            "root index {index} beyond the concurrent staging lane limit"
        );
        let max_held = st.held.iter().map(|(i, _)| *i).max();
        if max_held.is_none_or(|m| index > m) {
            // Ascending acquisition is deadlock-free: block. A conflict
            // abort unwinds through held guards, so poisoning carries no
            // information here (the guarded state is `()`).
            let g = st.lanes.lanes[index]
                .lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            st.held.push((index, g));
            return;
        }
        // Out of order: spin briefly, then abort-and-retry the FASE.
        for _ in 0..64 {
            match st.lanes.lanes[index].lock.try_lock() {
                Ok(g) => {
                    st.held.push((index, g));
                    return;
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    st.held.push((index, e.into_inner()));
                    return;
                }
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
            }
        }
        std::panic::panic_any(LaneConflict);
    }
}

impl Fase<'_> {
    /// The version of `root` this FASE currently sees: the shadow staged
    /// by an earlier [`Fase::update`] in this FASE, the latest head
    /// staged by an earlier FASE of the same pipeline, or the published
    /// version.
    pub fn current<D: DurableDs>(&self, root: Root<D>) -> D {
        match self.find(root.index()) {
            Some(p) => D::from_root_ptr(p.new),
            None => match self.lane_head(root.index()) {
                Some(p) => D::from_root_ptr(p),
                None => current_of(self.nv, root),
            },
        }
    }

    /// The version this FASE's first update to `index` chains from.
    fn baseline(&self, index: usize) -> PmPtr {
        match self.lane_head(index) {
            Some(p) => p,
            None => {
                let entry = crate::root::peek_entry(self.nv, index)
                    .unwrap_or_else(|| panic!("root {index} not in directory"));
                entry.root
            }
        }
    }

    fn lane_head(&self, index: usize) -> Option<PmPtr> {
        self.staging
            .as_ref()
            .and_then(|st| (index < STAGING_LANES).then(|| st.lanes.head(index))?)
    }

    /// Stages a pure update: `f` receives the heap and the current
    /// version and returns the new version. Returning the input version
    /// unchanged makes this a no-op (nothing staged, nothing committed).
    pub fn update<D: DurableDs>(&mut self, root: Root<D>, f: impl FnOnce(&mut NvHeap, D) -> D) {
        self.update_with(root, |nv, cur| (f(nv, cur), ()))
    }

    /// Stages a pure update that also computes a result, e.g. a dequeued
    /// element or a was-removed flag: `f` returns `(new_version, result)`.
    pub fn update_with<D: DurableDs, R>(
        &mut self,
        root: Root<D>,
        f: impl FnOnce(&mut NvHeap, D) -> (D, R),
    ) -> R {
        // Worker mode: own this root's staging lane before reading the
        // version the update chains from, and keep it until the FASE is
        // queued — same-root FASEs serialize, disjoint ones never meet.
        self.hold_lane(root.index());
        let cur = self.current(root);
        let (next, out) = f(self.nv, cur);
        if next.root_ptr() == cur.root_ptr() {
            return out; // no-op update: stage nothing
        }
        let baseline = self.baseline(root.index());
        match self.pending.iter().position(|p| p.index == root.index()) {
            Some(i) if next.root_ptr() == baseline => {
                // The chain reverted to the version it chained from (the
                // published version, or the batch head in a pipelined
                // commit): the root is back to a no-op. Unstage it and
                // reclaim every shadow this FASE built for it —
                // publishing the already-owned version as "fresh" would
                // double-release it at commit. A worker shard cannot
                // release (foreign refcounts are commit-side): it defers
                // the whole chain to the commit stage instead.
                let p = self.pending.remove(i);
                let head = ErasedDs {
                    kind: p.kind,
                    root: p.new,
                };
                match self.staging.as_mut() {
                    Some(st) => {
                        st.releases.push(head);
                        st.releases.extend(p.intermediates);
                    }
                    None => {
                        head.release(self.nv);
                        for im in p.intermediates {
                            im.release(self.nv);
                        }
                    }
                }
            }
            Some(i) => {
                let p = &mut self.pending[i];
                // If the closure resurfaced an earlier shadow, it becomes
                // the head again instead of staying an intermediate.
                p.intermediates.retain(|im| im.root != next.root_ptr());
                p.intermediates.push(ErasedDs {
                    kind: p.kind,
                    root: p.new,
                });
                p.new = next.root_ptr();
            }
            None => self.pending.push(PendingUpdate {
                index: root.index(),
                kind: D::KIND,
                new: next.root_ptr(),
                intermediates: Vec::new(),
                hybrid: None,
            }),
        }
        out
    }

    /// The volatile-index head of hybrid root `index` as this FASE sees
    /// it, after serializing on the root's staging lane: a version
    /// staged earlier in this FASE, a head staged by an earlier FASE of
    /// the same pipeline, or the committed head from the root annex.
    /// Returns 0 only for a root that was never hybrid (caller bug).
    pub(crate) fn hybrid_current(&mut self, index: usize) -> u64 {
        self.hold_lane(index);
        self.hybrid_vhead(index)
    }

    pub(crate) fn hybrid_vhead(&self, index: usize) -> u64 {
        if let Some(p) = self.find(index) {
            if let Some(h) = &p.hybrid {
                return h.new_v;
            }
        }
        if let Some(st) = &self.staging {
            if index < STAGING_LANES {
                let a = st.lanes.aux(index);
                if a != 0 {
                    return a;
                }
            }
        }
        match self.nv.annex().get(index) {
            0 => 0,
            w => spine::unpack_annex(w).1,
        }
    }

    /// Stages one effectful op on hybrid root `index`: applies it to the
    /// volatile index (inside the volatile allocation scope — nothing
    /// flushed, nothing charged) and stages a spine record carrying the
    /// op, or a compaction snapshot when the chain has outgrown the live
    /// structure. The caller has already decided the op is effectful
    /// (no-ops must not reach the spine: replay would still be correct,
    /// but the chain would grow for nothing).
    pub(crate) fn apply_hybrid(&mut self, index: usize, logical: RootKind, op: SpineOp) {
        self.hold_lane(index);
        let vcur = self.hybrid_vhead(index);
        assert!(vcur != 0, "hybrid op on root {index} with no volatile head");
        // The volatile scope must be closed even if the op panics (e.g.
        // an out-of-bounds `VecSet`): a stuck scope would silently mark
        // every later allocation volatile, and shared mode retries FASE
        // closures after catching panics.
        self.nv.begin_volatile();
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            op.apply(self.nv, logical, vcur)
        }));
        self.nv.end_volatile();
        let new_v = match applied {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        if new_v == vcur {
            return; // defensive: the op turned out to be a no-op
        }
        let head = match self.find(index) {
            Some(p) => p.new,
            None => self.baseline(index),
        };
        let count = spine::peek_record_meta(self.nv, head).2 + 1;
        let live = spine::live_len(self.nv, logical, new_v);
        let rec = if count >= COMPACT_MIN_OPS && count >= COMPACT_FACTOR * live.max(1) {
            // The chain dwarfs the structure: persist a fresh snapshot
            // with no predecessor. Committing it drops the directory's
            // reference to the old head, reclaiming the whole old chain
            // through the normal deferred-release path.
            let snap = spine::state_of(self.nv, logical, new_v);
            spine::store_record(self.nv, PmPtr::NULL, logical, 0, &snap)
        } else {
            spine::store_record(self.nv, head, logical, count, &op)
        };
        match self.pending.iter_mut().find(|p| p.index == index) {
            Some(p) => {
                let h = p.hybrid.as_mut().expect("hybrid op on non-hybrid pending");
                p.intermediates.push(ErasedDs {
                    kind: RootKind::Spine,
                    root: p.new,
                });
                p.intermediates.push(ErasedDs {
                    kind: h.logical,
                    root: PmPtr::from_addr(h.new_v),
                });
                p.new = rec;
                h.new_v = new_v;
            }
            None => self.pending.push(PendingUpdate {
                index,
                kind: RootKind::Spine,
                new: rec,
                intermediates: Vec::new(),
                hybrid: Some(HybridUpdate { logical, new_v }),
            }),
        }
    }

    /// Read access to the underlying heap (peek reads, stats).
    pub fn nv(&self) -> &NvHeap {
        self.nv
    }

    /// Mutable heap access for charged reads or hand-built shadows.
    /// Updates staged through [`Fase::update`] are the supported write
    /// path; direct writes here must follow the shadow discipline (write
    /// only to freshly allocated blocks).
    pub fn nv_mut(&mut self) -> &mut NvHeap {
        self.nv
    }

    /// The underlying simulated PM pool (crash images in tests).
    pub fn pm(&self) -> &Pmem {
        self.nv.pm()
    }

    /// Number of roots with updates staged so far.
    pub fn staged(&self) -> usize {
        self.pending.len()
    }

    fn find(&self, index: usize) -> Option<&PendingUpdate> {
        self.pending.iter().find(|p| p.index == index)
    }
}

impl ModHeap {
    /// Runs a failure-atomic section: every update staged by `f` commits
    /// atomically with exactly one ordering point (or not at all, if the
    /// process dies first). Returns the closure's result.
    pub fn fase<R>(&mut self, f: impl FnOnce(&mut Fase<'_>) -> R) -> R {
        let (pending, out) = {
            let mut tx = Fase::owner(self.nv_mut());
            let out = f(&mut tx);
            (std::mem::take(&mut tx.pending), out)
        };
        self.commit_fase(pending);
        out
    }

    /// Publishes staged FASE updates with exactly one ordering point.
    ///
    /// Single-root FASEs take the Fig 8b path: the directory entry is an
    /// 8-byte root pointer, so after the fence one atomic in-place store
    /// (wrapped as a commit write, like a root-slot store) swings it — no
    /// directory rebuild, no allocation, one `clwb`. Multi-root FASEs
    /// build one fresh directory (Fig 8c): flush it, fence once, swing
    /// the directory slot.
    pub(crate) fn commit_fase(&mut self, pending: Vec<PendingUpdate>) {
        if pending.is_empty() {
            return;
        }
        let dir = self.nv_mut().read_root(ROOT_DIR_SLOT);
        assert!(!dir.is_null(), "FASE update with no published roots");
        if let [p] = pending.as_slice() {
            let entry_addr = dir.addr() + 8 + 16 * p.index as u64 + 8;
            let old = PmPtr::from_addr(self.nv_mut().read_u64(entry_addr));
            let old = ErasedDs {
                kind: p.kind,
                root: old,
            };
            self.fence_and_drain();
            {
                let pm = self.nv_mut().pm_mut();
                pm.begin_commit();
                pm.write_u64(entry_addr, p.new.addr());
                pm.clwb(entry_addr);
                pm.end_commit();
            }
            // The FASE's temporary ownership of the shadow transfers to
            // the directory; the directory's reference to the superseded
            // version becomes a deferred reclaim.
            self.defer_release(old);
        } else {
            let mut children = parent::children_of(self.nv_mut(), dir);
            let tags = parent::peek_tags_of(self.nv(), dir);
            let mut fresh = Vec::with_capacity(pending.len());
            for p in &pending {
                let entry = &mut children[p.index];
                debug_assert_eq!(entry.kind, p.kind, "directory kind drift");
                entry.root = p.new;
                fresh.push(*entry);
            }
            self.swing_directory(dir, &children, &fresh, &tags);
        }
        // Hybrid roots: the committed spine record is durable; publish
        // the matching volatile-index head to the annex and retire the
        // superseded one through deferred reclaim (epoch-protected in
        // shared mode, next drain in single-owner mode).
        let annex = self.nv().annex().clone();
        for p in &pending {
            if let Some(h) = &p.hybrid {
                let old = annex.get(p.index);
                annex.set(p.index, spine::pack_annex(h.logical, h.new_v));
                if old != 0 {
                    let (kind, addr) = spine::unpack_annex(old);
                    self.defer_release(ErasedDs {
                        kind,
                        root: PmPtr::from_addr(addr),
                    });
                }
            }
        }
        // Intra-FASE shadows were never published: reclaim immediately.
        for p in pending {
            for im in p.intermediates {
                im.release(self.nv_mut());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_funcds::{PmMap, PmQueue, PmStack, PmVector};
    use mod_pmem::PmemConfig;

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn single_root_fase_one_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        let fences = h.nv().pm().stats().fences;
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"v")));
        assert_eq!(h.nv().pm().stats().fences - fences, 1);
        assert_eq!(h.current(map).peek_get(h.nv(), 1), Some(b"v".to_vec()));
    }

    #[test]
    fn multi_structure_fase_one_fence() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let q0 = PmQueue::empty(h.nv_mut());
        let s0 = PmStack::empty(h.nv_mut());
        let map = h.publish(m0);
        let queue = h.publish(q0);
        let stack = h.publish(s0);
        let fences = h.nv().pm().stats().fences;
        h.fase(|tx| {
            tx.update(map, |nv, m| m.insert(nv, 7, b"seven"));
            tx.update(queue, |nv, q| q.enqueue(nv, 7));
            tx.update(stack, |nv, s| s.push(nv, 7));
        });
        assert_eq!(
            h.nv().pm().stats().fences - fences,
            1,
            "three structures, still exactly one ordering point"
        );
        assert_eq!(h.current(queue).peek_front(h.nv()), Some(7));
        assert_eq!(h.current(stack).peek_top(h.nv()), Some(7));
    }

    #[test]
    fn chained_updates_reclaim_intermediates() {
        let mut h = mh();
        let v0 = PmVector::from_slice(h.nv_mut(), &[1, 2, 3, 4]);
        let vec = h.publish(v0);
        let frees = h.nv().stats().frees;
        let fences = h.nv().pm().stats().fences;
        // Fig 7b's vec-swap: two chained pure updates, one FASE.
        h.fase(|tx| {
            tx.update(vec, |nv, v| v.update(nv, 0, 4));
            tx.update(vec, |nv, v| v.update(nv, 3, 1));
        });
        assert_eq!(h.nv().pm().stats().fences - fences, 1);
        assert!(
            h.nv().stats().frees > frees,
            "intermediate shadow reclaimed immediately"
        );
        assert_eq!(h.current(vec).peek_to_vec(h.nv()), vec![4, 2, 3, 1]);
    }

    #[test]
    fn empty_fase_commits_nothing() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        let fences = h.nv().pm().stats().fences;
        let out = h.fase(|_| 41) + 1;
        h.fase(|tx| {
            // A staged no-op: the closure returns the version unchanged.
            tx.update(map, |_, m| m);
        });
        assert_eq!(h.nv().pm().stats().fences, fences, "no-op FASEs are free");
        assert_eq!(out, 42);
    }

    #[test]
    fn update_with_returns_result() {
        let mut h = mh();
        let q0 = PmQueue::empty(h.nv_mut()).enqueue(h.nv_mut(), 5);
        let queue = h.publish(q0);
        let popped = h.fase(|tx| {
            tx.update_with(queue, |nv, q| match q.dequeue(nv) {
                Some((nq, e)) => (nq, Some(e)),
                None => (q, None),
            })
        });
        assert_eq!(popped, Some(5));
        assert!(h.current(queue).peek_is_empty(h.nv()));
        // Empty queue: dequeue is a no-op FASE.
        let fences = h.nv().pm().stats().fences;
        let popped = h.fase(|tx| {
            tx.update_with(queue, |nv, q| match q.dequeue(nv) {
                Some((nq, e)) => (nq, Some(e)),
                None => (q, None),
            })
        });
        assert_eq!(popped, None);
        assert_eq!(h.nv().pm().stats().fences, fences);
    }

    #[test]
    fn fase_sees_its_own_updates() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        let (before, within) = h.fase(|tx| {
            let before = tx.current(map).contains_key(tx.nv_mut(), 9);
            tx.update(map, |nv, m| m.insert(nv, 9, b"x"));
            let within = tx.current(map).contains_key(tx.nv_mut(), 9);
            (before, within)
        });
        assert!(!before);
        assert!(within, "read-your-writes within the FASE");
    }

    #[test]
    fn deferred_reclaim_of_old_versions() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"a")));
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 2, b"b")));
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 3, b"c")));
        h.quiesce();
        // Only the live version (plus directory) remains.
        let live = h.nv().stats().live_blocks;
        let cur = h.current(map);
        assert_eq!(cur.peek_len(h.nv()), 3);
        assert!(live > 0);
        // Steady state: churn does not grow the heap.
        for i in 0..50u64 {
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, i % 3, b"over")));
        }
        h.quiesce();
        let live2 = h.nv().stats().live_blocks;
        for i in 0..200u64 {
            h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, i % 3, b"over")));
        }
        h.quiesce();
        assert_eq!(h.nv().stats().live_blocks, live2, "no leak under churn");
        let _ = live;
    }

    #[test]
    fn reverted_update_chain_is_a_noop_fase() {
        // A second update returning the originally *published* version
        // must unstage the root entirely — publishing the already-owned
        // version as fresh would double-release it (use-after-free).
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut()).insert(h.nv_mut(), 1, b"keep");
        let map = h.publish(m0);
        h.quiesce();
        let fences = h.nv().pm().stats().fences;
        let live = h.nv().stats().live_blocks;
        h.fase(|tx| {
            let orig = tx.current(map);
            tx.update(map, |nv, m| m.insert(nv, 2, b"staged"));
            tx.update(map, |nv, m| m.insert(nv, 3, b"chained"));
            tx.update(map, |_, _| orig); // revert everything
        });
        assert_eq!(h.nv().pm().stats().fences, fences, "revert = no-op FASE");
        assert_eq!(h.nv().stats().live_blocks, live, "staged shadows reclaimed");
        // The published version is intact and still owned by the directory.
        let cur = h.current(map);
        assert_eq!(cur.root(), m0.root());
        assert_eq!(cur.peek_get(h.nv(), 1), Some(b"keep".to_vec()));
        assert_eq!(h.nv().rc_get(m0.root()), 1);
        // And the heap keeps working: further FASEs publish normally.
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 4, b"after")));
        h.quiesce();
        assert_eq!(h.current(map).peek_get(h.nv(), 4), Some(b"after".to_vec()));
    }

    #[test]
    fn panicking_fase_publishes_nothing() {
        let mut h = mh();
        let m0 = PmMap::empty(h.nv_mut());
        let map = h.publish(m0);
        h.fase(|tx| tx.update(map, |nv, m| m.insert(nv, 1, b"committed")));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.fase(|tx| {
                tx.update(map, |nv, m| m.insert(nv, 2, b"doomed"));
                panic!("application bug mid-FASE");
            })
        }));
        assert!(result.is_err());
        let cur = h.current(map);
        assert_eq!(cur.peek_get(h.nv(), 1), Some(b"committed".to_vec()));
        assert_eq!(cur.peek_get(h.nv(), 2), None, "aborted FASE invisible");
    }
}
