//! Key/value encodings for the typed Basic-interface wrappers.
//!
//! The raw MOD substrate stores `u64` keys, byte-blob values and `u64`
//! elements. Applications used to hand-roll the bridge (FNV-hash the
//! string key, length-prefix it into the value, verify on lookup — see
//! the old `examples/kvstore.rs`). These traits capture that bridge once:
//!
//! * [`PmKey`] — map/set keys. Types injective into `u64` (integers) are
//!   *exact*: the word is the map key, values are stored raw. Other types
//!   (strings, byte vectors) are *hashed*: a 64-bit FNV-1a of the key
//!   bytes selects the map slot, and the key bytes are framed into the
//!   stored blob so lookups verify them — hash collisions degrade to a
//!   short in-bucket scan instead of silently returning the wrong value.
//! * [`PmValue`] — map values, encoded to/from bytes.
//! * [`PmWord`] — vector/stack/queue elements, encoded to/from one word.

/// How a key type maps onto the raw `u64`-keyed substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyRepr {
    /// The key *is* this word (injective): no framing, no collisions.
    Exact(u64),
    /// The key hashes to this word; `bytes` are framed into the bucket
    /// blob for verification.
    Hashed {
        /// The 64-bit bucket selector.
        hash: u64,
        /// The encoded key, stored alongside each value for verification.
        bytes: Vec<u8>,
    },
}

impl KeyRepr {
    /// The `u64` the raw map is keyed by.
    pub fn word(&self) -> u64 {
        match self {
            KeyRepr::Exact(w) => *w,
            KeyRepr::Hashed { hash, .. } => *hash,
        }
    }
}

/// 64-bit FNV-1a, the default hash for byte-keyed maps.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A type usable as a [`crate::DurableMap`]/[`crate::DurableSet`] key.
pub trait PmKey {
    /// Whether this key type is injective into `u64` ([`KeyRepr::Exact`]
    /// for every value). Exact-key maps store values unframed and count
    /// entries in `O(1)`.
    const EXACT: bool;

    /// Stable codec identifier persisted in the root directory so
    /// reopening a structure with a different key encoding is rejected
    /// ([`crate::basic::OpenError::CodecMismatch`]). `0` means "no codec
    /// recorded": custom key types that keep the default are accepted
    /// against anything (and record nothing), preserving compatibility.
    const CODEC: u8 = 0;

    /// The key's representation on the `u64`-keyed substrate.
    fn repr(&self) -> KeyRepr;
}

macro_rules! exact_key {
    ($($ty:ty => $tag:expr),*) => {$(
        impl PmKey for $ty {
            const EXACT: bool = true;
            const CODEC: u8 = $tag;

            fn repr(&self) -> KeyRepr {
                KeyRepr::Exact(*self as u64)
            }
        }
    )*};
}

exact_key!(
    u64 => 1, u32 => 2, u16 => 3, u8 => 4, usize => 5,
    i64 => 6, i32 => 7, i16 => 8, i8 => 9, isize => 10,
    bool => 11, char => 12
);

/// Codec id shared by all byte-string keys (`String`, `str`, `Vec<u8>`,
/// `[u8]`, `[u8; N]`): they are interchangeable on the substrate (same
/// FNV-1a hash of the same bytes, same frame layout), so they share one
/// id and a pool written with `String` keys reopens fine with `&[u8]`.
pub const BYTES_KEY_CODEC: u8 = 13;

impl PmKey for String {
    const EXACT: bool = false;
    const CODEC: u8 = BYTES_KEY_CODEC;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(self.as_bytes()),
            bytes: self.as_bytes().to_vec(),
        }
    }
}

impl PmKey for str {
    const EXACT: bool = false;
    const CODEC: u8 = BYTES_KEY_CODEC;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(self.as_bytes()),
            bytes: self.as_bytes().to_vec(),
        }
    }
}

impl PmKey for Vec<u8> {
    const EXACT: bool = false;
    const CODEC: u8 = BYTES_KEY_CODEC;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(self),
            bytes: self.clone(),
        }
    }
}

impl PmKey for [u8] {
    const EXACT: bool = false;
    const CODEC: u8 = BYTES_KEY_CODEC;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(self),
            bytes: self.to_vec(),
        }
    }
}

impl<const N: usize> PmKey for [u8; N] {
    const EXACT: bool = false;
    const CODEC: u8 = BYTES_KEY_CODEC;

    fn repr(&self) -> KeyRepr {
        KeyRepr::Hashed {
            hash: fnv1a_64(self),
            bytes: self.to_vec(),
        }
    }
}

impl<K: PmKey + ?Sized> PmKey for &K {
    const EXACT: bool = K::EXACT;
    const CODEC: u8 = K::CODEC;

    fn repr(&self) -> KeyRepr {
        (**self).repr()
    }
}

/// A type usable as a [`crate::DurableMap`] value.
pub trait PmValue: Sized {
    /// Stable codec identifier persisted in the root directory (see
    /// [`PmKey::CODEC`]); `0` means "no codec recorded".
    const CODEC: u8 = 0;

    /// Encodes the value to bytes.
    fn value_bytes(&self) -> Vec<u8>;

    /// Decodes a value from its bytes.
    ///
    /// # Panics
    ///
    /// Implementations may panic on malformed input — stored bytes always
    /// come from [`PmValue::value_bytes`], so malformed input means heap
    /// corruption or a type confusion bug.
    fn from_value_bytes(bytes: &[u8]) -> Self;
}

impl PmValue for Vec<u8> {
    const CODEC: u8 = 1;

    fn value_bytes(&self) -> Vec<u8> {
        self.clone()
    }

    fn from_value_bytes(bytes: &[u8]) -> Self {
        bytes.to_vec()
    }
}

impl PmValue for String {
    const CODEC: u8 = 2;

    fn value_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    fn from_value_bytes(bytes: &[u8]) -> Self {
        String::from_utf8(bytes.to_vec()).expect("corrupt UTF-8 value")
    }
}

impl PmValue for () {
    const CODEC: u8 = 3;

    fn value_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    fn from_value_bytes(_: &[u8]) -> Self {}
}

macro_rules! int_value {
    ($($ty:ty => $tag:expr),*) => {$(
        impl PmValue for $ty {
            const CODEC: u8 = $tag;

            fn value_bytes(&self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }

            fn from_value_bytes(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().expect("corrupt integer value"))
            }
        }
    )*};
}

int_value!(u64 => 4, u32 => 5, u16 => 6, i64 => 7, i32 => 8, i16 => 9);

impl<const N: usize> PmValue for [u8; N] {
    const CODEC: u8 = 10;

    fn value_bytes(&self) -> Vec<u8> {
        self.to_vec()
    }

    fn from_value_bytes(bytes: &[u8]) -> Self {
        bytes.try_into().expect("corrupt fixed-size value")
    }
}

/// A type usable as a [`crate::DurableVector`]/[`crate::DurableStack`]/
/// [`crate::DurableQueue`] element (one 8-byte word on the substrate).
pub trait PmWord: Sized {
    /// Stable codec identifier persisted in the root directory (see
    /// [`PmKey::CODEC`]); `0` means "no codec recorded".
    const CODEC: u8 = 0;

    /// Encodes the element as a word.
    fn to_word(&self) -> u64;

    /// Decodes an element from its word.
    fn from_word(w: u64) -> Self;
}

macro_rules! word_elem {
    ($($ty:ty => $tag:expr),*) => {$(
        impl PmWord for $ty {
            const CODEC: u8 = $tag;

            fn to_word(&self) -> u64 {
                *self as u64
            }

            fn from_word(w: u64) -> Self {
                w as $ty
            }
        }
    )*};
}

word_elem!(u64 => 1, u32 => 2, u16 => 3, u8 => 4, usize => 5);

impl PmWord for i64 {
    const CODEC: u8 = 6;

    fn to_word(&self) -> u64 {
        *self as u64
    }

    fn from_word(w: u64) -> Self {
        w as i64
    }
}

impl PmWord for i32 {
    const CODEC: u8 = 7;

    fn to_word(&self) -> u64 {
        *self as i64 as u64
    }

    fn from_word(w: u64) -> Self {
        w as i64 as i32
    }
}

impl PmWord for bool {
    const CODEC: u8 = 8;

    fn to_word(&self) -> u64 {
        *self as u64
    }

    fn from_word(w: u64) -> Self {
        w != 0
    }
}

// ---------------------------------------------------------------------
// Directory codec tags
// ---------------------------------------------------------------------
//
// The root directory stores one tag word per entry recording the codec
// discipline the structure was written with, so `DurableMap::<K, V>::open`
// can reject a K/V mismatch the way `open_root` rejects a `RootKind`
// mismatch. Word layout (LE):
//
//     bit 0       "tagged" marker (0 = no codec recorded)
//     bits 8..16  key/element codec id
//     bits 16..24 value codec id (maps/sets only)

/// The directory tag word for a map/set written with key codec `key` and
/// value codec `value` (each a `PmKey::CODEC`/`PmValue::CODEC` id).
pub const fn codec_word_kv(key: u8, value: u8) -> u64 {
    1 | ((key as u64) << 8) | ((value as u64) << 16)
}

/// The directory tag word for a vector/stack/queue written with element
/// codec `elem` (a `PmWord::CODEC` id).
pub const fn codec_word_elem(elem: u8) -> u64 {
    1 | ((elem as u64) << 8)
}

/// Splits a tag word into `(tagged, key_or_elem, value)` fields.
pub const fn codec_word_fields(word: u64) -> (bool, u8, u8) {
    (word & 1 == 1, (word >> 8) as u8, (word >> 16) as u8)
}

/// Whether a structure written under `stored` may be opened as
/// `expected`. Untagged words (either side) accept anything, as does a
/// field whose id is 0 on either side (a custom codec that records
/// nothing); otherwise every recorded field must match.
pub fn codec_compatible(stored: u64, expected: u64) -> bool {
    let (s_tagged, s_key, s_val) = codec_word_fields(stored);
    let (e_tagged, e_key, e_val) = codec_word_fields(expected);
    if !s_tagged || !e_tagged {
        return true;
    }
    let field_ok = |s: u8, e: u8| s == 0 || e == 0 || s == e;
    field_ok(s_key, e_key) && field_ok(s_val, e_val)
}

// ---------------------------------------------------------------------
// Bucket framing for hashed keys
// ---------------------------------------------------------------------
//
// A hashed-key bucket blob is a sequence of frames:
//     [klen: u32 LE][key bytes][vlen: u32 LE][value bytes]
// Buckets almost always hold one frame; a 64-bit hash collision appends
// a second instead of corrupting the first.

/// Appends one `(key, value)` frame to `out`.
pub(crate) fn push_frame(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// Iterates the `(key, value)` frames of a bucket blob.
pub(crate) fn frames(bucket: &[u8]) -> impl Iterator<Item = (&[u8], &[u8])> {
    let mut rest = bucket;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let klen = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let key = &rest[4..4 + klen];
        let after_key = &rest[4 + klen..];
        let vlen = u32::from_le_bytes(after_key[..4].try_into().unwrap()) as usize;
        let value = &after_key[4..4 + vlen];
        rest = &after_key[4 + vlen..];
        Some((key, value))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_are_exact() {
        assert_eq!(42u64.repr(), KeyRepr::Exact(42));
        assert_eq!(7u32.repr(), KeyRepr::Exact(7));
        assert_eq!((-1i64).repr(), KeyRepr::Exact(u64::MAX));
        assert_eq!(true.repr(), KeyRepr::Exact(1));
    }

    #[test]
    fn string_keys_hash_and_carry_bytes() {
        let k = "user:42".to_string();
        match k.repr() {
            KeyRepr::Hashed { hash, bytes } => {
                assert_eq!(hash, fnv1a_64(b"user:42"));
                assert_eq!(bytes, b"user:42");
            }
            other => panic!("expected hashed repr, got {other:?}"),
        }
        assert_eq!(k.repr().word(), "user:42".repr().word());
    }

    #[test]
    fn values_roundtrip() {
        assert_eq!(Vec::<u8>::from_value_bytes(&[1, 2]), vec![1, 2]);
        assert_eq!(String::from_value_bytes(b"hi"), "hi");
        assert_eq!(u64::from_value_bytes(&99u64.value_bytes()), 99);
        assert_eq!(i32::from_value_bytes(&(-5i32).value_bytes()), -5);
        assert_eq!(<[u8; 3]>::from_value_bytes(&[7, 8, 9]), [7, 8, 9]);
        ().value_bytes();
    }

    #[test]
    fn words_roundtrip() {
        assert_eq!(u64::from_word(5u64.to_word()), 5);
        assert_eq!(i64::from_word((-3i64).to_word()), -3);
        assert_eq!(i32::from_word((-3i32).to_word()), -3);
        assert_eq!(u32::from_word(7u32.to_word()), 7);
        assert!(bool::from_word(true.to_word()));
    }

    #[test]
    fn bucket_frames_roundtrip() {
        let mut b = Vec::new();
        push_frame(&mut b, b"alpha", b"1");
        push_frame(&mut b, b"beta", b"");
        push_frame(&mut b, b"", b"22");
        let got: Vec<_> = frames(&b).collect();
        assert_eq!(
            got,
            vec![
                (b"alpha".as_slice(), b"1".as_slice()),
                (b"beta".as_slice(), b"".as_slice()),
                (b"".as_slice(), b"22".as_slice()),
            ]
        );
    }
}
