//! The Basic interface (paper Fig 6a), typed: mutable-looking durable
//! collections whose every update is a self-contained FASE.
//!
//! Each wrapper is a thin, `Copy` view over a typed [`Root`]: updates run
//! one [`ModHeap::fase`] (pure shadow update, one ordering point, old
//! version handed to deferred reclamation) and lookups are **read-only**
//! — they take `&ModHeap`, need no flushes, fences, or exclusive access.
//!
//! Keys and values are application types bridged onto the raw `u64`/bytes
//! substrate by the [`crate::codec`] traits, so callers no longer
//! hand-roll FNV hashing or length-prefix framing:
//!
//! ```
//! use mod_core::{DurableMap, ModHeap};
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
//! let map: DurableMap<String, Vec<u8>> = DurableMap::create(&mut heap);
//! map.insert(&mut heap, &"user:42".to_string(), &b"Ada".to_vec());
//! assert_eq!(map.get(&heap, &"user:42".to_string()), Some(b"Ada".to_vec()));
//! ```
//!
//! Every wrapper also composes into multi-structure FASEs through its
//! `*_in` methods, which stage the update on a [`Fase`] instead of
//! committing immediately.

use crate::codec::{
    codec_compatible, codec_word_elem, codec_word_fields, codec_word_kv, frames, push_frame,
    KeyRepr, PmKey, PmValue, PmWord,
};
use crate::erased::{DurableDs, ErasedDs, RootKind};
use crate::fase::Fase;
use crate::heap::ModHeap;
use crate::root::Root;
use crate::spine::{self, PersistPolicy, SpineOp, SpineState};
use mod_alloc::HeapRead;
use mod_funcds::{PmMap, PmQueue, PmStack, PmVector};
use mod_pmem::PmPtr;
use std::marker::PhantomData;

/// Why reattaching a typed wrapper to a directory index failed.
///
/// Returned by the `try_open` constructors; the panicking `open`
/// constructors surface the same conditions as panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpenError {
    /// No root was ever published at this directory index.
    NoSuchRoot {
        /// The requested directory index.
        index: usize,
        /// How many roots the directory holds.
        roots: usize,
    },
    /// The directory records a different datastructure kind (e.g. the
    /// index holds a queue, not a map).
    KindMismatch {
        /// The requested directory index.
        index: usize,
        /// The kind recorded in the directory.
        stored: RootKind,
        /// The kind the wrapper expected.
        expected: RootKind,
    },
    /// The directory records a different key/value codec discipline than
    /// the wrapper's type parameters — e.g. a `DurableMap<u64, Vec<u8>>`
    /// opened as `DurableMap<String, u64>`. Without this check the wrong
    /// decoder would run over well-formed bytes and return garbage.
    CodecMismatch {
        /// The requested directory index.
        index: usize,
        /// The codec tag word recorded in the directory.
        stored: u64,
        /// The codec tag word derived from the wrapper's type parameters.
        expected: u64,
    },
    /// The root was created under a different [`PersistPolicy`] than the
    /// one requested. The policy is recorded durably in the directory
    /// entry: a hybrid root's persistent image is a spine of op records,
    /// not a full structure, so opening it as `Full` would traverse
    /// records as trie nodes (and opening a full root as `Hybrid` would
    /// replay trie nodes as records).
    PolicyMismatch {
        /// The requested directory index.
        index: usize,
        /// The policy the root was created under.
        stored: PersistPolicy,
        /// The policy the open requested.
        requested: PersistPolicy,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::NoSuchRoot { index, roots } => {
                write!(
                    f,
                    "no root published at directory index {index} ({roots} roots exist)"
                )
            }
            OpenError::KindMismatch {
                index,
                stored,
                expected,
            } => write!(f, "root {index} holds a {stored:?}, not a {expected:?}"),
            OpenError::CodecMismatch {
                index,
                stored,
                expected,
            } => {
                let (_, sk, sv) = codec_word_fields(*stored);
                let (_, ek, ev) = codec_word_fields(*expected);
                write!(
                    f,
                    "root {index} was written with codec key/elem={sk} value={sv}, \
                     but was opened expecting key/elem={ek} value={ev}"
                )
            }
            OpenError::PolicyMismatch {
                index,
                stored,
                requested,
            } => write!(
                f,
                "root {index} was created with PersistPolicy::{stored:?}, \
                 but was opened requesting PersistPolicy::{requested:?}"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

/// Shared open path: policy check (the directory entry's kind *is* the
/// durable policy record — hybrid roots are stored as
/// [`RootKind::Spine`]), then kind check, then codec check against the
/// persisted tag word.
fn open_checked<D: DurableDs>(
    heap: &ModHeap,
    index: usize,
    expected_codec: u64,
    policy: PersistPolicy,
) -> Result<Root<D>, OpenError> {
    let entry = crate::root::peek_entry(heap.nv(), index).ok_or(OpenError::NoSuchRoot {
        index,
        roots: heap.root_count(),
    })?;
    let stored_kind = match (policy, entry.kind) {
        (PersistPolicy::Full, RootKind::Spine) => {
            return Err(OpenError::PolicyMismatch {
                index,
                stored: PersistPolicy::Hybrid,
                requested: PersistPolicy::Full,
            });
        }
        (PersistPolicy::Full, k) => k,
        (PersistPolicy::Hybrid, RootKind::Spine) => spine::logical_kind(heap.nv(), entry.root),
        (PersistPolicy::Hybrid, k) if k == D::KIND => {
            return Err(OpenError::PolicyMismatch {
                index,
                stored: PersistPolicy::Full,
                requested: PersistPolicy::Hybrid,
            });
        }
        (PersistPolicy::Hybrid, k) => k,
    };
    if stored_kind != D::KIND {
        return Err(OpenError::KindMismatch {
            index,
            stored: stored_kind,
            expected: D::KIND,
        });
    }
    let stored = heap.root_codec_tag(index);
    if !codec_compatible(stored, expected_codec) {
        return Err(OpenError::CodecMismatch {
            index,
            stored,
            expected: expected_codec,
        });
    }
    Ok(Root::new(index))
}

/// Creates and publishes a hybrid root: an empty volatile index, a
/// durable genesis snapshot record, and a directory entry of kind
/// [`RootKind::Spine`] (the durable policy record). Returns the index.
fn create_hybrid(heap: &mut ModHeap, logical: RootKind, codec: u64) -> usize {
    let nv = heap.nv_mut();
    nv.begin_volatile();
    let v0 = match logical {
        RootKind::Map => PmMap::empty(nv).root().addr(),
        RootKind::Vector => PmVector::empty(nv).root().addr(),
        RootKind::Stack => PmStack::empty(nv).root().addr(),
        RootKind::Queue => PmQueue::empty(nv).root().addr(),
        k => unreachable!("no hybrid form for {k:?}"),
    };
    nv.end_volatile();
    let genesis = match logical {
        RootKind::Map => SpineOp::Snapshot(SpineState::Map(Vec::new())),
        _ => SpineOp::Snapshot(SpineState::Words(Vec::new())),
    };
    let rec = spine::store_record(heap.nv_mut(), PmPtr::NULL, logical, 0, &genesis);
    let index = heap.publish_erased_tagged(
        ErasedDs {
            kind: RootKind::Spine,
            root: rec,
        },
        codec,
    );
    heap.nv().annex().set(index, spine::pack_annex(logical, v0));
    index
}

// ---------------------------------------------------------------------
// Root builder (the unified constructor API)
// ---------------------------------------------------------------------

/// A typed wrapper that can be created and reopened through
/// [`ModHeap::root`]'s builder: the five `Durable*` collections.
pub trait DurableRoot: Sized {
    /// Creates the structure under `policy`, publishing it as a new root
    /// at the directory's next free index.
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self;

    /// Reattaches to the root at `index`, checking kind, codec, and
    /// persistence policy against the durable directory entry.
    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError>;
}

/// Builder for opening or creating a typed root at one directory index —
/// the one constructor path for all five `Durable*` wrappers:
///
/// ```
/// use mod_core::{DurableMap, ModHeap, PersistPolicy};
/// use mod_pmem::{Pmem, PmemConfig};
///
/// let mut heap = ModHeap::create(Pmem::new(PmemConfig::testing()));
/// let map: DurableMap<u64, Vec<u8>> = heap
///     .root(0)
///     .policy(PersistPolicy::Hybrid)
///     .open_or_create()
///     .unwrap();
/// map.insert(&mut heap, &7, &b"x".to_vec());
/// ```
#[derive(Debug)]
pub struct RootBuilder<'h, D: DurableRoot> {
    heap: &'h mut ModHeap,
    index: usize,
    policy: PersistPolicy,
    _d: PhantomData<fn() -> D>,
}

impl ModHeap {
    /// Starts opening or creating the typed root at directory `index`.
    /// Defaults to [`PersistPolicy::Full`]; select hybrid persistence
    /// with [`RootBuilder::policy`].
    pub fn root<D: DurableRoot>(&mut self, index: usize) -> RootBuilder<'_, D> {
        RootBuilder {
            heap: self,
            index,
            policy: PersistPolicy::Full,
            _d: PhantomData,
        }
    }
}

impl<D: DurableRoot> RootBuilder<'_, D> {
    /// Selects the persistence policy (checked against the durable
    /// directory entry on open, recorded in it on create).
    pub fn policy(mut self, policy: PersistPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Reattaches to the existing root at this index.
    pub fn open(self) -> Result<D, OpenError> {
        D::open_with(self.heap, self.index, self.policy)
    }

    /// Opens the root if the index exists, creates it if the index is
    /// the directory's next free slot, and fails with
    /// [`OpenError::NoSuchRoot`] on a gap (a create there would land at
    /// a different index than the one named).
    pub fn open_or_create(self) -> Result<D, OpenError> {
        let count = self.heap.root_count();
        match self.index {
            i if i < count => D::open_with(self.heap, i, self.policy),
            i if i == count => Ok(D::create_with(self.heap, self.policy)),
            i => Err(OpenError::NoSuchRoot {
                index: i,
                roots: count,
            }),
        }
    }

    /// Creates the root at this index, which must be the directory's
    /// next free slot.
    ///
    /// # Panics
    ///
    /// Panics if the index is not `heap.root_count()`.
    pub fn create(self) -> D {
        assert_eq!(
            self.index,
            self.heap.root_count(),
            "create must target the directory's next free index"
        );
        D::create_with(self.heap, self.policy)
    }
}

/// One map lookup through either read path (charged or peek).
/// `pub(crate)` so [`crate::snapshot::SnapshotView`] reuses the exact
/// decode logic over its pinned root image.
pub(crate) fn raw_get(cur: PmMap, heap: &mut HeapRead<'_>, key: u64) -> Option<Vec<u8>> {
    match heap {
        HeapRead::Charged(nv) => cur.get(nv, key),
        HeapRead::Peek(nv) => cur.peek_get(nv, key),
    }
}

/// Decodes a typed lookup: exact keys read the value directly; hashed
/// keys scan the bucket's frames for the matching key bytes.
pub(crate) fn lookup<V: PmValue>(cur: PmMap, heap: &mut HeapRead<'_>, repr: &KeyRepr) -> Option<V> {
    match repr {
        KeyRepr::Exact(w) => raw_get(cur, heap, *w).map(|b| V::from_value_bytes(&b)),
        KeyRepr::Hashed { hash, bytes } => {
            let bucket = raw_get(cur, heap, *hash)?;
            let found = frames(&bucket)
                .find(|(k, _)| k == bytes)
                .map(|(_, v)| V::from_value_bytes(v));
            found
        }
    }
}

// ---------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------

/// A durable map with logically in-place updates (Basic interface).
///
/// `K` selects the key encoding (exact integers or hashed-and-verified
/// byte keys) and `V` the value encoding; see [`crate::codec`].
pub struct DurableMap<K: PmKey, V: PmValue> {
    root: Root<PmMap>,
    policy: PersistPolicy,
    _kv: PhantomData<fn() -> (K, V)>,
}

impl<K: PmKey, V: PmValue> Clone for DurableMap<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K: PmKey, V: PmValue> Copy for DurableMap<K, V> {}

impl<K: PmKey, V: PmValue> std::fmt::Debug for DurableMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DurableMap({:?})", self.root)
    }
}

impl<K: PmKey, V: PmValue> DurableMap<K, V> {
    /// The directory codec tag word for this map's `K`/`V` parameters.
    const CODEC_WORD: u64 = codec_word_kv(K::CODEC, V::CODEC);

    /// Creates an empty map and publishes it as a new typed root, with
    /// the `K`/`V` codec discipline recorded in the directory entry.
    pub fn create(heap: &mut ModHeap) -> Self {
        Self::create_with(heap, PersistPolicy::Full)
    }

    /// Reattaches to the map published at directory `index` (after
    /// recovery).
    ///
    /// Both the structure kind and the `K`/`V` codec discipline are
    /// checked against the persistent directory entry: opening a
    /// `DurableMap<u64, Vec<u8>>` root as `DurableMap<String, u64>`
    /// fails instead of decoding garbage.
    ///
    /// # Panics
    ///
    /// Panics on any [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn open(heap: &ModHeap, index: usize) -> Self {
        match Self::open_with(heap, index, PersistPolicy::Full) {
            Ok(map) => map,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reattaches to the map published at directory `index`, reporting
    /// kind and codec mismatches as a typed [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn try_open(heap: &ModHeap, index: usize) -> Result<Self, OpenError> {
        Self::open_with(heap, index, PersistPolicy::Full)
    }

    /// Wraps an already-opened typed root (full persistence).
    pub fn from_root(root: Root<PmMap>) -> Self {
        DurableMap {
            root,
            policy: PersistPolicy::Full,
            _kv: PhantomData,
        }
    }

    /// The typed root this map is published under.
    pub fn root(&self) -> Root<PmMap> {
        self.root
    }

    /// The persistence policy this handle operates under.
    pub fn policy(&self) -> PersistPolicy {
        self.policy
    }

    /// The current substrate version under either policy: the published
    /// trie root (full) or the committed volatile head (hybrid).
    fn cur(&self, heap: &ModHeap) -> PmMap {
        match self.policy {
            PersistPolicy::Full => heap.current(self.root),
            PersistPolicy::Hybrid => {
                let (kind, addr) = heap
                    .hybrid_head(self.root.index())
                    .expect("hybrid map has no volatile head (pool not opened hybrid-aware?)");
                debug_assert_eq!(kind, RootKind::Map);
                PmMap::from_root(PmPtr::from_addr(addr))
            }
        }
    }

    /// The substrate version as an in-progress FASE sees it.
    fn cur_in(&self, tx: &Fase<'_>) -> PmMap {
        match self.policy {
            PersistPolicy::Full => tx.current(self.root),
            PersistPolicy::Hybrid => {
                PmMap::from_root(PmPtr::from_addr(tx.hybrid_vhead(self.root.index())))
            }
        }
    }

    /// Failure-atomically inserts or updates `key` (one FASE).
    pub fn insert(&self, heap: &mut ModHeap, key: &K, value: &V) {
        heap.fase(|tx| self.insert_in(tx, key, value));
    }

    /// Stages an insert on an in-progress FASE.
    pub fn insert_in(&self, tx: &mut Fase<'_>, key: &K, value: &V) {
        let value = value.value_bytes();
        if self.policy == PersistPolicy::Hybrid {
            let index = self.root.index();
            let vcur = PmMap::from_root(PmPtr::from_addr(tx.hybrid_current(index)));
            let (key, val) = match key.repr() {
                KeyRepr::Exact(w) => (w, value),
                KeyRepr::Hashed { hash, bytes } => {
                    let mut bucket = Vec::with_capacity(8 + bytes.len() + value.len());
                    push_frame(&mut bucket, &bytes, &value);
                    if let Some(old) = vcur.peek_get(tx.nv(), hash) {
                        for (k, v) in frames(&old) {
                            if k != bytes {
                                push_frame(&mut bucket, k, v);
                            }
                        }
                    }
                    (hash, bucket)
                }
            };
            tx.apply_hybrid(index, RootKind::Map, SpineOp::MapInsert { key, val });
            return;
        }
        match key.repr() {
            KeyRepr::Exact(w) => tx.update(self.root, |nv, m| m.insert(nv, w, &value)),
            KeyRepr::Hashed { hash, bytes } => tx.update(self.root, |nv, m| {
                let mut bucket = Vec::with_capacity(8 + bytes.len() + value.len());
                push_frame(&mut bucket, &bytes, &value);
                if let Some(old) = m.get(nv, hash) {
                    // Preserve colliding keys other than ours.
                    for (k, v) in frames(&old) {
                        if k != bytes {
                            push_frame(&mut bucket, k, v);
                        }
                    }
                }
                m.insert(nv, hash, &bucket)
            }),
        }
    }

    /// Failure-atomically removes `key` (one FASE); returns whether it
    /// was present. An absent key is a no-op FASE: no ordering point.
    pub fn remove(&self, heap: &mut ModHeap, key: &K) -> bool {
        heap.fase(|tx| self.remove_in(tx, key))
    }

    /// Stages a removal on an in-progress FASE.
    pub fn remove_in(&self, tx: &mut Fase<'_>, key: &K) -> bool {
        if self.policy == PersistPolicy::Hybrid {
            let index = self.root.index();
            let vcur = PmMap::from_root(PmPtr::from_addr(tx.hybrid_current(index)));
            let op = match key.repr() {
                KeyRepr::Exact(w) => {
                    if !vcur.peek_contains_key(tx.nv(), w) {
                        return false;
                    }
                    SpineOp::MapRemove { key: w }
                }
                KeyRepr::Hashed { hash, bytes } => {
                    let Some(old) = vcur.peek_get(tx.nv(), hash) else {
                        return false;
                    };
                    if !frames(&old).any(|(k, _)| k == bytes) {
                        return false;
                    }
                    let mut bucket = Vec::new();
                    for (k, v) in frames(&old) {
                        if k != bytes {
                            push_frame(&mut bucket, k, v);
                        }
                    }
                    if bucket.is_empty() {
                        SpineOp::MapRemove { key: hash }
                    } else {
                        SpineOp::MapInsert {
                            key: hash,
                            val: bucket,
                        }
                    }
                }
            };
            tx.apply_hybrid(index, RootKind::Map, op);
            return true;
        }
        match key.repr() {
            KeyRepr::Exact(w) => tx.update_with(self.root, |nv, m| m.remove(nv, w)),
            KeyRepr::Hashed { hash, bytes } => tx.update_with(self.root, |nv, m| {
                let Some(old) = m.get(nv, hash) else {
                    return (m, false);
                };
                if !frames(&old).any(|(k, _)| k == bytes) {
                    return (m, false);
                }
                let mut bucket = Vec::new();
                for (k, v) in frames(&old) {
                    if k != bytes {
                        push_frame(&mut bucket, k, v);
                    }
                }
                if bucket.is_empty() {
                    (m.remove(nv, hash).0, true)
                } else {
                    (m.insert(nv, hash, &bucket), true)
                }
            }),
        }
    }

    /// Looks up `key`. Read-only: no flushes, no fences, no `&mut`.
    pub fn get(&self, heap: &ModHeap, key: &K) -> Option<V> {
        lookup(self.cur(heap), &mut heap.nv().into(), &key.repr())
    }

    /// Looks up `key` as this FASE sees it (read-your-writes).
    pub fn get_in(&self, tx: &Fase<'_>, key: &K) -> Option<V> {
        lookup(self.cur_in(tx), &mut tx.nv().into(), &key.repr())
    }

    /// Acquires this map's staging lane without staging an update
    /// (worker FASEs only; a no-op in single-owner FASEs). Read-modify-
    /// write sequences need this *before* their [`DurableMap::get_in`]:
    /// plain reads are lock-free, so without the lane hold a concurrent
    /// same-root FASE could stage between the read and the dependent
    /// `insert_in`, losing its update. Stages nothing — a FASE that only
    /// touches commits nothing and costs no ordering point.
    pub fn touch_in(&self, tx: &mut Fase<'_>) {
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |_, m| m),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
            }
        }
    }

    /// Whether `key` is present. Read-only.
    pub fn contains_key(&self, heap: &ModHeap, key: &K) -> bool {
        match key.repr() {
            KeyRepr::Exact(w) => self.cur(heap).peek_contains_key(heap.nv(), w),
            KeyRepr::Hashed { .. } => self.get(heap, key).is_some(),
        }
    }

    /// Number of entries. Read-only. `O(1)` for exact keys; for hashed
    /// keys this scans the buckets (`O(n)`) because a rare 64-bit hash
    /// collision packs two entries into one substrate slot.
    pub fn len(&self, heap: &ModHeap) -> u64 {
        let cur = self.cur(heap);
        if !K::EXACT {
            cur.peek_to_vec(heap.nv())
                .iter()
                .map(|(_, bucket)| frames(bucket).count() as u64)
                .sum()
        } else {
            cur.peek_len(heap.nv())
        }
    }

    /// Whether the map is empty. Read-only, `O(1)`.
    pub fn is_empty(&self, heap: &ModHeap) -> bool {
        self.cur(heap).peek_is_empty(heap.nv())
    }

    /// Looks up `key` through the charged (instrumented) read path.
    #[deprecated(
        since = "0.2.0",
        note = "use `DurableMap::get`, which takes `&ModHeap`"
    )]
    pub fn get_mut(&self, heap: &mut ModHeap, key: &K) -> Option<V> {
        let cur = self.cur(heap);
        lookup(cur, &mut heap.nv_mut().into(), &key.repr())
    }

    /// Membership test through the charged (instrumented) read path.
    #[deprecated(
        since = "0.2.0",
        note = "use `DurableMap::contains_key`, which takes `&ModHeap`"
    )]
    #[allow(deprecated)]
    pub fn contains_key_mut(&self, heap: &mut ModHeap, key: &K) -> bool {
        match key.repr() {
            KeyRepr::Exact(w) => self.cur(heap).contains_key(heap.nv_mut(), w),
            KeyRepr::Hashed { .. } => self.get_mut(heap, key).is_some(),
        }
    }

    /// Entry count through the charged (instrumented) read path.
    #[deprecated(
        since = "0.2.0",
        note = "use `DurableMap::len`, which takes `&ModHeap`"
    )]
    pub fn len_mut(&self, heap: &mut ModHeap) -> u64 {
        let cur = self.cur(heap);
        if !K::EXACT {
            cur.to_vec(heap.nv_mut())
                .iter()
                .map(|(_, bucket)| frames(bucket).count() as u64)
                .sum()
        } else {
            cur.len(heap.nv_mut())
        }
    }
}

impl<K: PmKey, V: PmValue> DurableRoot for DurableMap<K, V> {
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self {
        let root = match policy {
            PersistPolicy::Full => {
                let m0 = PmMap::empty(heap.nv_mut());
                heap.publish_tagged(m0, Self::CODEC_WORD)
            }
            PersistPolicy::Hybrid => {
                Root::new(create_hybrid(heap, RootKind::Map, Self::CODEC_WORD))
            }
        };
        DurableMap {
            root,
            policy,
            _kv: PhantomData,
        }
    }

    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError> {
        open_checked::<PmMap>(heap, index, Self::CODEC_WORD, policy).map(|root| DurableMap {
            root,
            policy,
            _kv: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------
// Set
// ---------------------------------------------------------------------

/// A durable set with logically in-place updates (Basic interface).
///
/// Implemented as a [`DurableMap`] with unit values, which makes hashed
/// (byte) keys collision-correct; membership costs no value blobs.
pub struct DurableSet<K: PmKey> {
    map: DurableMap<K, ()>,
}

impl<K: PmKey> Clone for DurableSet<K> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K: PmKey> Copy for DurableSet<K> {}

impl<K: PmKey> std::fmt::Debug for DurableSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DurableSet({:?})", self.map.root())
    }
}

impl<K: PmKey> DurableSet<K> {
    /// Creates an empty set and publishes it as a new typed root, with
    /// the `K` codec discipline recorded in the directory entry.
    pub fn create(heap: &mut ModHeap) -> Self {
        Self::create_with(heap, PersistPolicy::Full)
    }

    /// Reattaches to the set published at directory `index`.
    ///
    /// # Panics
    ///
    /// Panics on any [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn open(heap: &ModHeap, index: usize) -> Self {
        match Self::open_with(heap, index, PersistPolicy::Full) {
            Ok(set) => set,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reattaches to the set published at directory `index`, reporting
    /// kind and codec mismatches as a typed [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn try_open(heap: &ModHeap, index: usize) -> Result<Self, OpenError> {
        Self::open_with(heap, index, PersistPolicy::Full)
    }

    /// Wraps an already-opened typed root (full persistence).
    pub fn from_root(root: Root<PmMap>) -> Self {
        DurableSet {
            map: DurableMap::from_root(root),
        }
    }

    /// The typed root this set is published under.
    pub fn root(&self) -> Root<PmMap> {
        self.map.root()
    }

    /// The persistence policy this handle operates under.
    pub fn policy(&self) -> PersistPolicy {
        self.map.policy()
    }

    /// Failure-atomically inserts `key`; returns whether it was new. A
    /// duplicate insert is a no-op FASE: no shadow, no ordering point.
    pub fn insert(&self, heap: &mut ModHeap, key: &K) -> bool {
        heap.fase(|tx| self.insert_in(tx, key))
    }

    /// Stages an insert on an in-progress FASE; returns whether new.
    pub fn insert_in(&self, tx: &mut Fase<'_>, key: &K) -> bool {
        if self.map.get_in(tx, key).is_some() {
            return false;
        }
        self.map.insert_in(tx, key, &());
        true
    }

    /// Membership test. Read-only: no flushes, fences, or `&mut`.
    pub fn contains(&self, heap: &ModHeap, key: &K) -> bool {
        self.map.contains_key(heap, key)
    }

    /// Failure-atomically removes `key`; returns whether it was present.
    pub fn remove(&self, heap: &mut ModHeap, key: &K) -> bool {
        self.map.remove(heap, key)
    }

    /// Stages a removal on an in-progress FASE.
    pub fn remove_in(&self, tx: &mut Fase<'_>, key: &K) -> bool {
        self.map.remove_in(tx, key)
    }

    /// Number of elements. Read-only.
    pub fn len(&self, heap: &ModHeap) -> u64 {
        self.map.len(heap)
    }

    /// Whether the set is empty. Read-only.
    pub fn is_empty(&self, heap: &ModHeap) -> bool {
        self.map.is_empty(heap)
    }
}

impl<K: PmKey> DurableRoot for DurableSet<K> {
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self {
        DurableSet {
            map: DurableMap::create_with(heap, policy),
        }
    }

    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError> {
        DurableMap::open_with(heap, index, policy).map(|map| DurableSet { map })
    }
}

// ---------------------------------------------------------------------
// Vector
// ---------------------------------------------------------------------

/// A durable vector with logically in-place updates (Basic interface).
pub struct DurableVector<V: PmWord> {
    root: Root<PmVector>,
    policy: PersistPolicy,
    _v: PhantomData<fn() -> V>,
}

impl<V: PmWord> Clone for DurableVector<V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<V: PmWord> Copy for DurableVector<V> {}

impl<V: PmWord> std::fmt::Debug for DurableVector<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DurableVector({:?})", self.root)
    }
}

impl<V: PmWord> DurableVector<V> {
    /// The directory codec tag word for this vector's `V` parameter.
    const CODEC_WORD: u64 = codec_word_elem(V::CODEC);

    /// Creates an empty vector and publishes it as a new typed root,
    /// with the `V` codec discipline recorded in the directory entry.
    pub fn create(heap: &mut ModHeap) -> Self {
        Self::create_with(heap, PersistPolicy::Full)
    }

    /// Creates a vector pre-filled from `elems`, published as a new root.
    pub fn create_from(heap: &mut ModHeap, elems: &[V]) -> Self {
        let words: Vec<u64> = elems.iter().map(PmWord::to_word).collect();
        let v0 = PmVector::from_slice(heap.nv_mut(), &words);
        let root = heap.publish_tagged(v0, Self::CODEC_WORD);
        Self::from_root(root)
    }

    /// Reattaches to the vector published at directory `index`.
    ///
    /// # Panics
    ///
    /// Panics on any [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn open(heap: &ModHeap, index: usize) -> Self {
        match Self::open_with(heap, index, PersistPolicy::Full) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reattaches to the vector published at directory `index`,
    /// reporting kind and codec mismatches as a typed [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn try_open(heap: &ModHeap, index: usize) -> Result<Self, OpenError> {
        Self::open_with(heap, index, PersistPolicy::Full)
    }

    /// Wraps an already-opened typed root (full persistence).
    pub fn from_root(root: Root<PmVector>) -> Self {
        DurableVector {
            root,
            policy: PersistPolicy::Full,
            _v: PhantomData,
        }
    }

    /// The typed root this vector is published under.
    pub fn root(&self) -> Root<PmVector> {
        self.root
    }

    /// The persistence policy this handle operates under.
    pub fn policy(&self) -> PersistPolicy {
        self.policy
    }

    fn cur(&self, heap: &ModHeap) -> PmVector {
        match self.policy {
            PersistPolicy::Full => heap.current(self.root),
            PersistPolicy::Hybrid => {
                let (kind, addr) = heap
                    .hybrid_head(self.root.index())
                    .expect("hybrid vector has no volatile head");
                debug_assert_eq!(kind, RootKind::Vector);
                PmVector::from_root(PmPtr::from_addr(addr))
            }
        }
    }

    fn cur_in(&self, tx: &Fase<'_>) -> PmVector {
        match self.policy {
            PersistPolicy::Full => tx.current(self.root),
            PersistPolicy::Hybrid => {
                PmVector::from_root(PmPtr::from_addr(tx.hybrid_vhead(self.root.index())))
            }
        }
    }

    /// Failure-atomically appends `elem` (one FASE).
    pub fn push_back(&self, heap: &mut ModHeap, elem: &V) {
        heap.fase(|tx| self.push_back_in(tx, elem));
    }

    /// Stages an append on an in-progress FASE.
    pub fn push_back_in(&self, tx: &mut Fase<'_>, elem: &V) {
        let w = elem.to_word();
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |nv, v| v.push_back(nv, w)),
            PersistPolicy::Hybrid => {
                tx.apply_hybrid(self.root.index(), RootKind::Vector, SpineOp::VecPush(w))
            }
        }
    }

    /// Failure-atomically writes `elem` at `index` (one FASE).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update(&self, heap: &mut ModHeap, index: u64, elem: &V) {
        heap.fase(|tx| self.update_in(tx, index, elem));
    }

    /// Stages a point write on an in-progress FASE.
    pub fn update_in(&self, tx: &mut Fase<'_>, index: u64, elem: &V) {
        let w = elem.to_word();
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |nv, v| v.update(nv, index, w)),
            PersistPolicy::Hybrid => tx.apply_hybrid(
                self.root.index(),
                RootKind::Vector,
                SpineOp::VecSet { index, elem: w },
            ),
        }
    }

    /// Failure-atomically removes and returns the last element.
    pub fn pop_back(&self, heap: &mut ModHeap) -> Option<V> {
        heap.fase(|tx| match self.policy {
            PersistPolicy::Full => tx.update_with(self.root, |nv, v| match v.pop_back(nv) {
                Some((nv2, e)) => (nv2, Some(V::from_word(e))),
                None => (v, None),
            }),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
                let cur = self.cur_in(tx);
                let len = cur.peek_len(tx.nv());
                if len == 0 {
                    return None;
                }
                let e = cur.peek_get(tx.nv(), len - 1);
                tx.apply_hybrid(self.root.index(), RootKind::Vector, SpineOp::VecPop);
                Some(V::from_word(e))
            }
        })
    }

    /// Failure-atomically swaps elements `i` and `j` — the vec-swap FASE
    /// of Fig 7b: two chained pure updates, one ordering point.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap(&self, heap: &mut ModHeap, i: u64, j: u64) {
        if i == j {
            return;
        }
        heap.fase(|tx| match self.policy {
            PersistPolicy::Full => {
                let cur = tx.current(self.root);
                let vi = cur.peek_get(tx.nv(), i);
                let vj = cur.peek_get(tx.nv(), j);
                tx.update(self.root, |nv, v| v.update(nv, i, vj));
                tx.update(self.root, |nv, v| v.update(nv, j, vi));
            }
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
                let cur = self.cur_in(tx);
                let vi = cur.peek_get(tx.nv(), i);
                let vj = cur.peek_get(tx.nv(), j);
                let idx = self.root.index();
                tx.apply_hybrid(
                    idx,
                    RootKind::Vector,
                    SpineOp::VecSet { index: i, elem: vj },
                );
                tx.apply_hybrid(
                    idx,
                    RootKind::Vector,
                    SpineOp::VecSet { index: j, elem: vi },
                );
            }
        });
    }

    /// Element at `index`. Read-only: no flushes, fences, or `&mut`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, heap: &ModHeap, index: u64) -> V {
        V::from_word(self.cur(heap).peek_get(heap.nv(), index))
    }

    /// Element at `index` as this FASE sees it (read-your-writes).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get_in(&self, tx: &Fase<'_>, index: u64) -> V {
        V::from_word(self.cur_in(tx).peek_get(tx.nv(), index))
    }

    /// Acquires this vector's staging lane without staging an update —
    /// see [`DurableMap::touch_in`] for when read-modify-write sequences
    /// need it.
    pub fn touch_in(&self, tx: &mut Fase<'_>) {
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |_, v| v),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
            }
        }
    }

    /// Number of elements. Read-only.
    pub fn len(&self, heap: &ModHeap) -> u64 {
        self.cur(heap).peek_len(heap.nv())
    }

    /// Whether the vector is empty. Read-only.
    pub fn is_empty(&self, heap: &ModHeap) -> bool {
        self.len(heap) == 0
    }

    /// Collects all elements in order. Read-only.
    pub fn to_vec(&self, heap: &ModHeap) -> Vec<V> {
        self.cur(heap)
            .peek_to_vec(heap.nv())
            .into_iter()
            .map(V::from_word)
            .collect()
    }
}

impl<V: PmWord> DurableRoot for DurableVector<V> {
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self {
        let root = match policy {
            PersistPolicy::Full => {
                let v0 = PmVector::empty(heap.nv_mut());
                heap.publish_tagged(v0, Self::CODEC_WORD)
            }
            PersistPolicy::Hybrid => {
                Root::new(create_hybrid(heap, RootKind::Vector, Self::CODEC_WORD))
            }
        };
        DurableVector {
            root,
            policy,
            _v: PhantomData,
        }
    }

    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError> {
        open_checked::<PmVector>(heap, index, Self::CODEC_WORD, policy).map(|root| DurableVector {
            root,
            policy,
            _v: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------
// Stack
// ---------------------------------------------------------------------

/// A durable stack with logically in-place updates (Basic interface).
pub struct DurableStack<V: PmWord> {
    root: Root<PmStack>,
    policy: PersistPolicy,
    _v: PhantomData<fn() -> V>,
}

impl<V: PmWord> Clone for DurableStack<V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<V: PmWord> Copy for DurableStack<V> {}

impl<V: PmWord> std::fmt::Debug for DurableStack<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DurableStack({:?})", self.root)
    }
}

impl<V: PmWord> DurableStack<V> {
    /// The directory codec tag word for this stack's `V` parameter.
    const CODEC_WORD: u64 = codec_word_elem(V::CODEC);

    /// Creates an empty stack and publishes it as a new typed root, with
    /// the `V` codec discipline recorded in the directory entry.
    pub fn create(heap: &mut ModHeap) -> Self {
        Self::create_with(heap, PersistPolicy::Full)
    }

    /// Reattaches to the stack published at directory `index`.
    ///
    /// # Panics
    ///
    /// Panics on any [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn open(heap: &ModHeap, index: usize) -> Self {
        match Self::open_with(heap, index, PersistPolicy::Full) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reattaches to the stack published at directory `index`, reporting
    /// kind and codec mismatches as a typed [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn try_open(heap: &ModHeap, index: usize) -> Result<Self, OpenError> {
        Self::open_with(heap, index, PersistPolicy::Full)
    }

    /// Wraps an already-opened typed root (full persistence).
    pub fn from_root(root: Root<PmStack>) -> Self {
        DurableStack {
            root,
            policy: PersistPolicy::Full,
            _v: PhantomData,
        }
    }

    /// The typed root this stack is published under.
    pub fn root(&self) -> Root<PmStack> {
        self.root
    }

    /// The persistence policy this handle operates under.
    pub fn policy(&self) -> PersistPolicy {
        self.policy
    }

    fn cur(&self, heap: &ModHeap) -> PmStack {
        match self.policy {
            PersistPolicy::Full => heap.current(self.root),
            PersistPolicy::Hybrid => {
                let (kind, addr) = heap
                    .hybrid_head(self.root.index())
                    .expect("hybrid stack has no volatile head");
                debug_assert_eq!(kind, RootKind::Stack);
                PmStack::from_root(PmPtr::from_addr(addr))
            }
        }
    }

    fn cur_in(&self, tx: &Fase<'_>) -> PmStack {
        match self.policy {
            PersistPolicy::Full => tx.current(self.root),
            PersistPolicy::Hybrid => {
                PmStack::from_root(PmPtr::from_addr(tx.hybrid_vhead(self.root.index())))
            }
        }
    }

    /// Failure-atomically pushes `elem` (one FASE).
    pub fn push(&self, heap: &mut ModHeap, elem: &V) {
        heap.fase(|tx| self.push_in(tx, elem));
    }

    /// Stages a push on an in-progress FASE.
    pub fn push_in(&self, tx: &mut Fase<'_>, elem: &V) {
        let w = elem.to_word();
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |nv, s| s.push(nv, w)),
            PersistPolicy::Hybrid => {
                tx.apply_hybrid(self.root.index(), RootKind::Stack, SpineOp::StackPush(w))
            }
        }
    }

    /// Failure-atomically pops the top element (no-op FASE when empty).
    pub fn pop(&self, heap: &mut ModHeap) -> Option<V> {
        heap.fase(|tx| self.pop_in(tx))
    }

    /// Stages a pop on an in-progress FASE.
    pub fn pop_in(&self, tx: &mut Fase<'_>) -> Option<V> {
        match self.policy {
            PersistPolicy::Full => tx.update_with(self.root, |nv, s| match s.pop(nv) {
                Some((ns, e)) => (ns, Some(V::from_word(e))),
                None => (s, None),
            }),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
                let top = self.cur_in(tx).peek_top(tx.nv())?;
                tx.apply_hybrid(self.root.index(), RootKind::Stack, SpineOp::StackPop);
                Some(V::from_word(top))
            }
        }
    }

    /// Top element. Read-only: no flushes, fences, or `&mut`.
    pub fn peek(&self, heap: &ModHeap) -> Option<V> {
        self.cur(heap).peek_top(heap.nv()).map(V::from_word)
    }

    /// Number of elements. Read-only.
    pub fn len(&self, heap: &ModHeap) -> u64 {
        self.cur(heap).peek_len(heap.nv())
    }

    /// Whether the stack is empty. Read-only.
    pub fn is_empty(&self, heap: &ModHeap) -> bool {
        self.len(heap) == 0
    }
}

impl<V: PmWord> DurableRoot for DurableStack<V> {
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self {
        let root = match policy {
            PersistPolicy::Full => {
                let s0 = PmStack::empty(heap.nv_mut());
                heap.publish_tagged(s0, Self::CODEC_WORD)
            }
            PersistPolicy::Hybrid => {
                Root::new(create_hybrid(heap, RootKind::Stack, Self::CODEC_WORD))
            }
        };
        DurableStack {
            root,
            policy,
            _v: PhantomData,
        }
    }

    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError> {
        open_checked::<PmStack>(heap, index, Self::CODEC_WORD, policy).map(|root| DurableStack {
            root,
            policy,
            _v: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

/// A durable FIFO queue with logically in-place updates (Basic
/// interface).
pub struct DurableQueue<V: PmWord> {
    root: Root<PmQueue>,
    policy: PersistPolicy,
    _v: PhantomData<fn() -> V>,
}

impl<V: PmWord> Clone for DurableQueue<V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<V: PmWord> Copy for DurableQueue<V> {}

impl<V: PmWord> std::fmt::Debug for DurableQueue<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DurableQueue({:?})", self.root)
    }
}

impl<V: PmWord> DurableQueue<V> {
    /// The directory codec tag word for this queue's `V` parameter.
    const CODEC_WORD: u64 = codec_word_elem(V::CODEC);

    /// Creates an empty queue and publishes it as a new typed root, with
    /// the `V` codec discipline recorded in the directory entry.
    pub fn create(heap: &mut ModHeap) -> Self {
        Self::create_with(heap, PersistPolicy::Full)
    }

    /// Reattaches to the queue published at directory `index`.
    ///
    /// # Panics
    ///
    /// Panics on any [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn open(heap: &ModHeap, index: usize) -> Self {
        match Self::open_with(heap, index, PersistPolicy::Full) {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reattaches to the queue published at directory `index`, reporting
    /// kind and codec mismatches as a typed [`OpenError`].
    #[deprecated(since = "0.4.0", note = "use `heap.root(index).open()`")]
    pub fn try_open(heap: &ModHeap, index: usize) -> Result<Self, OpenError> {
        Self::open_with(heap, index, PersistPolicy::Full)
    }

    /// Wraps an already-opened typed root (full persistence).
    pub fn from_root(root: Root<PmQueue>) -> Self {
        DurableQueue {
            root,
            policy: PersistPolicy::Full,
            _v: PhantomData,
        }
    }

    /// The typed root this queue is published under.
    pub fn root(&self) -> Root<PmQueue> {
        self.root
    }

    /// The persistence policy this handle operates under.
    pub fn policy(&self) -> PersistPolicy {
        self.policy
    }

    fn cur(&self, heap: &ModHeap) -> PmQueue {
        match self.policy {
            PersistPolicy::Full => heap.current(self.root),
            PersistPolicy::Hybrid => {
                let (kind, addr) = heap
                    .hybrid_head(self.root.index())
                    .expect("hybrid queue has no volatile head");
                debug_assert_eq!(kind, RootKind::Queue);
                PmQueue::from_root(PmPtr::from_addr(addr))
            }
        }
    }

    fn cur_in(&self, tx: &Fase<'_>) -> PmQueue {
        match self.policy {
            PersistPolicy::Full => tx.current(self.root),
            PersistPolicy::Hybrid => {
                PmQueue::from_root(PmPtr::from_addr(tx.hybrid_vhead(self.root.index())))
            }
        }
    }

    /// Failure-atomically enqueues `elem` (one FASE).
    pub fn enqueue(&self, heap: &mut ModHeap, elem: &V) {
        heap.fase(|tx| self.enqueue_in(tx, elem));
    }

    /// Stages an enqueue on an in-progress FASE.
    pub fn enqueue_in(&self, tx: &mut Fase<'_>, elem: &V) {
        let w = elem.to_word();
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |nv, q| q.enqueue(nv, w)),
            PersistPolicy::Hybrid => {
                tx.apply_hybrid(self.root.index(), RootKind::Queue, SpineOp::QueueEnq(w))
            }
        }
    }

    /// Failure-atomically dequeues the head (no-op FASE when empty).
    pub fn dequeue(&self, heap: &mut ModHeap) -> Option<V> {
        heap.fase(|tx| self.dequeue_in(tx))
    }

    /// Stages a dequeue on an in-progress FASE.
    pub fn dequeue_in(&self, tx: &mut Fase<'_>) -> Option<V> {
        match self.policy {
            PersistPolicy::Full => tx.update_with(self.root, |nv, q| match q.dequeue(nv) {
                Some((nq, e)) => (nq, Some(V::from_word(e))),
                None => (q, None),
            }),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
                let front = self.cur_in(tx).peek_front(tx.nv())?;
                tx.apply_hybrid(self.root.index(), RootKind::Queue, SpineOp::QueueDeq);
                Some(V::from_word(front))
            }
        }
    }

    /// Acquires this queue's staging lane without staging an update
    /// (see [`DurableMap::touch_in`]); a read that must stay consistent
    /// with reads of *other* roots in the same FASE needs it first.
    pub fn touch_in(&self, tx: &mut Fase<'_>) {
        match self.policy {
            PersistPolicy::Full => tx.update(self.root, |_, q| q),
            PersistPolicy::Hybrid => {
                tx.hybrid_current(self.root.index());
            }
        }
    }

    /// Head element as this FASE sees it (read-your-writes).
    pub fn front_in(&self, tx: &Fase<'_>) -> Option<V> {
        self.cur_in(tx).peek_front(tx.nv()).map(V::from_word)
    }

    /// Head element. Read-only: no flushes, fences, or `&mut`.
    pub fn peek(&self, heap: &ModHeap) -> Option<V> {
        self.cur(heap).peek_front(heap.nv()).map(V::from_word)
    }

    /// Number of elements. Read-only.
    pub fn len(&self, heap: &ModHeap) -> u64 {
        self.cur(heap).peek_len(heap.nv())
    }

    /// Whether the queue is empty. Read-only.
    pub fn is_empty(&self, heap: &ModHeap) -> bool {
        self.len(heap) == 0
    }
}

impl<V: PmWord> DurableRoot for DurableQueue<V> {
    fn create_with(heap: &mut ModHeap, policy: PersistPolicy) -> Self {
        let root = match policy {
            PersistPolicy::Full => {
                let q0 = PmQueue::empty(heap.nv_mut());
                heap.publish_tagged(q0, Self::CODEC_WORD)
            }
            PersistPolicy::Hybrid => {
                Root::new(create_hybrid(heap, RootKind::Queue, Self::CODEC_WORD))
            }
        };
        DurableQueue {
            root,
            policy,
            _v: PhantomData,
        }
    }

    fn open_with(heap: &ModHeap, index: usize, policy: PersistPolicy) -> Result<Self, OpenError> {
        open_checked::<PmQueue>(heap, index, Self::CODEC_WORD, policy).map(|root| DurableQueue {
            root,
            policy,
            _v: PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    /// A key type whose every value hashes to the same bucket, forcing
    /// the collision branches of the bucket framing.
    struct Colliding(&'static str);

    impl PmKey for Colliding {
        const EXACT: bool = false;

        fn repr(&self) -> KeyRepr {
            KeyRepr::Hashed {
                hash: 42,
                bytes: self.0.as_bytes().to_vec(),
            }
        }
    }

    #[test]
    fn colliding_hashed_keys_stay_distinct() {
        let mut h = mh();
        let map: DurableMap<Colliding, String> = DurableMap::create(&mut h);
        map.insert(&mut h, &Colliding("alpha"), &"a1".to_string());
        map.insert(&mut h, &Colliding("beta"), &"b1".to_string());
        map.insert(&mut h, &Colliding("gamma"), &"c1".to_string());
        assert_eq!(map.len(&h), 3, "three frames share one bucket");
        assert_eq!(map.get(&h, &Colliding("alpha")).as_deref(), Some("a1"));
        assert_eq!(map.get(&h, &Colliding("beta")).as_deref(), Some("b1"));
        assert_eq!(map.get(&h, &Colliding("gamma")).as_deref(), Some("c1"));
        assert_eq!(map.get(&h, &Colliding("delta")), None);

        // Overwriting one colliding key must preserve its siblings.
        map.insert(&mut h, &Colliding("beta"), &"b2".to_string());
        assert_eq!(map.len(&h), 3);
        assert_eq!(map.get(&h, &Colliding("alpha")).as_deref(), Some("a1"));
        assert_eq!(map.get(&h, &Colliding("beta")).as_deref(), Some("b2"));
        assert_eq!(map.get(&h, &Colliding("gamma")).as_deref(), Some("c1"));

        // Removing one colliding key re-packs the bucket without the rest.
        assert!(map.remove(&mut h, &Colliding("alpha")));
        assert!(!map.remove(&mut h, &Colliding("alpha")));
        assert_eq!(map.len(&h), 2);
        assert_eq!(map.get(&h, &Colliding("alpha")), None);
        assert_eq!(map.get(&h, &Colliding("beta")).as_deref(), Some("b2"));

        // Draining the bucket removes the substrate entry entirely.
        assert!(map.remove(&mut h, &Colliding("beta")));
        assert!(map.remove(&mut h, &Colliding("gamma")));
        assert_eq!(map.len(&h), 0);
        assert!(map.is_empty(&h));

        // The bucket slot is reusable afterwards.
        map.insert(&mut h, &Colliding("omega"), &"o1".to_string());
        assert_eq!(map.get(&h, &Colliding("omega")).as_deref(), Some("o1"));
    }

    #[test]
    fn colliding_set_members_stay_distinct() {
        let mut h = mh();
        let set: DurableSet<Colliding> = DurableSet::create(&mut h);
        assert!(set.insert(&mut h, &Colliding("x")));
        assert!(set.insert(&mut h, &Colliding("y")));
        assert!(!set.insert(&mut h, &Colliding("x")), "duplicate");
        assert_eq!(set.len(&h), 2);
        assert!(set.contains(&h, &Colliding("x")));
        assert!(set.contains(&h, &Colliding("y")));
        assert!(!set.contains(&h, &Colliding("z")));
        assert!(set.remove(&mut h, &Colliding("x")));
        assert!(!set.contains(&h, &Colliding("x")));
        assert!(set.contains(&h, &Colliding("y")), "sibling survives");
    }

    #[test]
    fn open_rejects_codec_mismatch_with_typed_error() {
        let mut h = mh();
        let map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut h);
        map.insert(&mut h, &7, &vec![1, 2, 3]);
        h.quiesce();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        // Correct types reopen fine.
        assert!(h2.root::<DurableMap<u64, Vec<u8>>>(0).open().is_ok());
        // Wrong key AND value codecs: typed error, not garbage.
        let err = h2.root::<DurableMap<String, u64>>(0).open().unwrap_err();
        assert!(matches!(err, OpenError::CodecMismatch { index: 0, .. }));
        assert!(err.to_string().contains("codec"));
        // Wrong value codec alone is also caught.
        assert!(matches!(
            h2.root::<DurableMap<u64, String>>(0).open(),
            Err(OpenError::CodecMismatch { .. })
        ));
        // Wrong kind reports KindMismatch before codec.
        assert!(matches!(
            h2.root::<DurableQueue<u64>>(0).open(),
            Err(OpenError::KindMismatch { .. })
        ));
        // Unpublished index reports NoSuchRoot.
        assert!(matches!(
            h2.root::<DurableMap<u64, Vec<u8>>>(9).open(),
            Err(OpenError::NoSuchRoot { index: 9, roots: 1 })
        ));
    }

    #[test]
    #[should_panic(expected = "was opened expecting")]
    #[allow(deprecated)]
    fn deprecated_open_still_delegates_and_panics_on_codec_mismatch() {
        let mut h = mh();
        let _map: DurableMap<u64, Vec<u8>> = DurableMap::create(&mut h);
        let _ = DurableMap::<String, u64>::open(&h, 0);
    }

    #[test]
    fn untagged_custom_codecs_stay_compatible() {
        // `Colliding` keeps the default CODEC = 0: nothing is recorded
        // for the key field, so reopening with any key type whose codec
        // could plausibly match is accepted (the historical behavior).
        let mut h = mh();
        let map: DurableMap<Colliding, String> = DurableMap::create(&mut h);
        map.insert(&mut h, &Colliding("a"), &"v".to_string());
        assert!(h.root::<DurableMap<Colliding, String>>(0).open().is_ok());
        assert!(h.root::<DurableMap<String, String>>(0).open().is_ok());
        // But a recorded *value* codec still protects against mismatch.
        assert!(matches!(
            h.root::<DurableMap<Colliding, u64>>(0).open(),
            Err(OpenError::CodecMismatch { .. })
        ));
    }

    #[test]
    fn elem_codec_mismatch_rejected_across_restart() {
        let mut h = mh();
        let q: DurableQueue<u64> = DurableQueue::create(&mut h);
        q.enqueue(&mut h, &5);
        h.quiesce();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        assert!(h2.root::<DurableQueue<u64>>(0).open().is_ok());
        assert!(matches!(
            h2.root::<DurableQueue<i32>>(0).open(),
            Err(OpenError::CodecMismatch { .. })
        ));
    }

    #[test]
    fn typed_wrappers_roundtrip_and_survive_restart() {
        let mut h = mh();
        let map: DurableMap<String, u32> = DurableMap::create(&mut h);
        let vec: DurableVector<i64> = DurableVector::create_from(&mut h, &[-3, 0, 7]);
        let stack: DurableStack<u64> = DurableStack::create(&mut h);
        let queue: DurableQueue<u32> = DurableQueue::create(&mut h);
        map.insert(&mut h, &"k".to_string(), &9);
        stack.push(&mut h, &5);
        queue.enqueue(&mut h, &6);
        vec.update(&mut h, 1, &100);
        h.quiesce();
        let img = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = ModHeap::open(img);
        let map: DurableMap<String, u32> = h2.root(0).open().unwrap();
        let vec: DurableVector<i64> = h2.root(1).open().unwrap();
        let stack: DurableStack<u64> = h2.root(2).open().unwrap();
        let queue: DurableQueue<u32> = h2.root(3).open().unwrap();
        assert_eq!(map.get(&h2, &"k".to_string()), Some(9));
        assert_eq!(vec.to_vec(&h2), vec![-3, 100, 7]);
        assert_eq!(stack.peek(&h2), Some(5));
        assert_eq!(queue.peek(&h2), Some(6));
    }
}
