//! The Basic interface (paper Fig 6a): mutable-looking durable
//! datastructures whose every update is a self-contained FASE.
//!
//! Each wrapper owns a root slot and the currently published version.
//! An update performs the pure shadow update, commits with one ordering
//! point ([`ModHeap::commit_single`]), and hands the superseded version to
//! deferred reclamation — hiding Functional Shadowing entirely, the way
//! the paper's `Update(dsPtr, params)` does. Lookups need no flushes or
//! fences at all.

use crate::heap::ModHeap;
use mod_funcds::{PmMap, PmQueue, PmSet, PmStack, PmVector};

macro_rules! common_impl {
    ($wrapper:ident, $handle:ty, $article:literal) => {
        impl $wrapper {
            /// Creates an empty structure and publishes it in `slot`.
            ///
            /// # Panics
            ///
            /// Panics if the slot is already occupied.
            pub fn create(heap: &mut ModHeap, slot: usize) -> $wrapper {
                let cur = <$handle>::empty(heap.nv_mut());
                heap.publish_root(slot, cur);
                $wrapper { slot, cur }
            }

            /// Reattaches to the version published in `slot` (after
            /// recovery).
            ///
            /// # Panics
            ///
            /// Panics if the slot is empty.
            pub fn open(heap: &mut ModHeap, slot: usize) -> $wrapper {
                let cur: $handle = crate::recovery::root_handle(heap, slot);
                $wrapper { slot, cur }
            }

            /// The currently published version (for Composition-interface
            /// interop or read snapshots).
            pub fn current(&self) -> $handle {
                self.cur
            }

            /// The root slot this structure is published in.
            pub fn slot(&self) -> usize {
                self.slot
            }

            fn commit(&mut self, heap: &mut ModHeap, new: $handle) {
                heap.commit_single(self.slot, self.cur, &[], new);
                self.cur = new;
            }
        }
    };
}

/// A durable map with logically in-place updates (Basic interface).
#[derive(Debug)]
pub struct DurableMap {
    slot: usize,
    cur: PmMap,
}

common_impl!(DurableMap, PmMap, "a map");

impl DurableMap {
    /// Failure-atomically inserts or updates `key`.
    pub fn insert(&mut self, heap: &mut ModHeap, key: u64, value: &[u8]) {
        let new = self.cur.insert(heap.nv_mut(), key, value);
        self.commit(heap, new);
    }

    /// Looks up `key` (no flushes, no fences).
    pub fn get(&self, heap: &mut ModHeap, key: u64) -> Option<Vec<u8>> {
        self.cur.get(heap.nv_mut(), key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, heap: &mut ModHeap, key: u64) -> bool {
        self.cur.contains_key(heap.nv_mut(), key)
    }

    /// Failure-atomically removes `key`; returns whether it was present.
    pub fn remove(&mut self, heap: &mut ModHeap, key: u64) -> bool {
        let (new, removed) = self.cur.remove(heap.nv_mut(), key);
        if removed {
            self.commit(heap, new);
        }
        removed
    }

    /// Number of entries.
    pub fn len(&self, heap: &mut ModHeap) -> u64 {
        self.cur.len(heap.nv_mut())
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, heap: &mut ModHeap) -> bool {
        self.len(heap) == 0
    }
}

/// A durable set with logically in-place updates (Basic interface).
#[derive(Debug)]
pub struct DurableSet {
    slot: usize,
    cur: PmSet,
}

common_impl!(DurableSet, PmSet, "a set");

impl DurableSet {
    /// Failure-atomically inserts `key`; returns whether it was new. A
    /// duplicate insert is a no-op FASE: detected by lookup, no shadow is
    /// built and no ordering point is paid.
    pub fn insert(&mut self, heap: &mut ModHeap, key: u64) -> bool {
        if self.cur.contains(heap.nv_mut(), key) {
            return false;
        }
        let (new, added) = self.cur.insert(heap.nv_mut(), key);
        debug_assert!(added);
        self.commit(heap, new);
        true
    }

    /// Membership test (no flushes, no fences).
    pub fn contains(&self, heap: &mut ModHeap, key: u64) -> bool {
        self.cur.contains(heap.nv_mut(), key)
    }

    /// Failure-atomically removes `key`; returns whether it was present.
    pub fn remove(&mut self, heap: &mut ModHeap, key: u64) -> bool {
        let (new, removed) = self.cur.remove(heap.nv_mut(), key);
        if removed {
            self.commit(heap, new);
        }
        removed
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut ModHeap) -> u64 {
        self.cur.len(heap.nv_mut())
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, heap: &mut ModHeap) -> bool {
        self.len(heap) == 0
    }
}

/// A durable vector with logically in-place updates (Basic interface).
#[derive(Debug)]
pub struct DurableVector {
    slot: usize,
    cur: PmVector,
}

common_impl!(DurableVector, PmVector, "a vector");

impl DurableVector {
    /// Creates a vector pre-filled from `elems`, published in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn create_from(heap: &mut ModHeap, slot: usize, elems: &[u64]) -> DurableVector {
        let cur = PmVector::from_slice(heap.nv_mut(), elems);
        heap.publish_root(slot, cur);
        DurableVector { slot, cur }
    }

    /// Failure-atomically appends `elem`.
    pub fn push_back(&mut self, heap: &mut ModHeap, elem: u64) {
        let new = self.cur.push_back(heap.nv_mut(), elem);
        self.commit(heap, new);
    }

    /// Failure-atomically writes `elem` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update(&mut self, heap: &mut ModHeap, index: u64, elem: u64) {
        let new = self.cur.update(heap.nv_mut(), index, elem);
        self.commit(heap, new);
    }

    /// Element at `index` (no flushes, no fences).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, heap: &mut ModHeap, index: u64) -> u64 {
        self.cur.get(heap.nv_mut(), index)
    }

    /// Failure-atomically removes and returns the last element.
    pub fn pop_back(&mut self, heap: &mut ModHeap) -> Option<u64> {
        let (new, elem) = self.cur.pop_back(heap.nv_mut())?;
        self.commit(heap, new);
        Some(elem)
    }

    /// Failure-atomically swaps elements `i` and `j` — the vec-swap FASE
    /// of Fig 7b: two pure updates, one commit, one ordering point.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap(&mut self, heap: &mut ModHeap, i: u64, j: u64) {
        if i == j {
            return;
        }
        let vi = self.cur.get(heap.nv_mut(), i);
        let vj = self.cur.get(heap.nv_mut(), j);
        let shadow = self.cur.update(heap.nv_mut(), i, vj);
        let shadow_shadow = shadow.update(heap.nv_mut(), j, vi);
        heap.commit_single(self.slot, self.cur, &[shadow], shadow_shadow);
        self.cur = shadow_shadow;
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut ModHeap) -> u64 {
        self.cur.len(heap.nv_mut())
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self, heap: &mut ModHeap) -> bool {
        self.len(heap) == 0
    }
}

/// A durable stack with logically in-place updates (Basic interface).
#[derive(Debug)]
pub struct DurableStack {
    slot: usize,
    cur: PmStack,
}

common_impl!(DurableStack, PmStack, "a stack");

impl DurableStack {
    /// Failure-atomically pushes `elem`.
    pub fn push(&mut self, heap: &mut ModHeap, elem: u64) {
        let new = self.cur.push(heap.nv_mut(), elem);
        self.commit(heap, new);
    }

    /// Failure-atomically pops the top element.
    pub fn pop(&mut self, heap: &mut ModHeap) -> Option<u64> {
        let (new, elem) = self.cur.pop(heap.nv_mut())?;
        self.commit(heap, new);
        Some(elem)
    }

    /// Top element (no flushes, no fences).
    pub fn peek(&self, heap: &mut ModHeap) -> Option<u64> {
        self.cur.peek(heap.nv_mut())
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut ModHeap) -> u64 {
        self.cur.len(heap.nv_mut())
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self, heap: &mut ModHeap) -> bool {
        self.len(heap) == 0
    }
}

/// A durable FIFO queue with logically in-place updates (Basic interface).
#[derive(Debug)]
pub struct DurableQueue {
    slot: usize,
    cur: PmQueue,
}

common_impl!(DurableQueue, PmQueue, "a queue");

impl DurableQueue {
    /// Failure-atomically enqueues `elem`.
    pub fn enqueue(&mut self, heap: &mut ModHeap, elem: u64) {
        let new = self.cur.enqueue(heap.nv_mut(), elem);
        self.commit(heap, new);
    }

    /// Failure-atomically dequeues the head element.
    pub fn dequeue(&mut self, heap: &mut ModHeap) -> Option<u64> {
        let (new, elem) = self.cur.dequeue(heap.nv_mut())?;
        self.commit(heap, new);
        Some(elem)
    }

    /// Head element (no flushes, no fences).
    pub fn peek(&self, heap: &mut ModHeap) -> Option<u64> {
        self.cur.peek(heap.nv_mut())
    }

    /// Number of elements.
    pub fn len(&self, heap: &mut ModHeap) -> u64 {
        self.cur.len(heap.nv_mut())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, heap: &mut ModHeap) -> bool {
        self.len(heap) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{recover, RootSpec};
    use crate::RootKind;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

    fn mh() -> ModHeap {
        ModHeap::create(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn durable_map_basic_ops() {
        let mut h = mh();
        let mut m = DurableMap::create(&mut h, 0);
        m.insert(&mut h, 1, b"one");
        m.insert(&mut h, 2, b"two");
        assert_eq!(m.get(&mut h, 1), Some(b"one".to_vec()));
        assert_eq!(m.len(&mut h), 2);
        assert!(m.remove(&mut h, 1));
        assert!(!m.remove(&mut h, 1));
        assert!(!m.contains_key(&mut h, 1));
    }

    #[test]
    fn one_fence_per_basic_update() {
        let mut h = mh();
        let mut m = DurableMap::create(&mut h, 0);
        let before = h.nv().pm().stats().fences;
        for i in 0..10 {
            m.insert(&mut h, i, b"value-bytes-here");
        }
        assert_eq!(h.nv().pm().stats().fences - before, 10);
    }

    #[test]
    fn lookups_cost_no_fences_or_flushes() {
        let mut h = mh();
        let mut m = DurableMap::create(&mut h, 0);
        m.insert(&mut h, 1, b"x");
        let s = h.nv().pm().stats().clone();
        let _ = m.get(&mut h, 1);
        let _ = m.contains_key(&mut h, 2);
        let after = h.nv().pm().stats();
        assert_eq!(after.fences, s.fences);
        assert_eq!(after.flushes, s.flushes);
    }

    #[test]
    fn durable_vector_swap_is_one_fase() {
        let mut h = mh();
        let mut v = DurableVector::create_from(&mut h, 0, &(0..100).collect::<Vec<_>>());
        let before = h.nv().pm().stats().fences;
        v.swap(&mut h, 3, 97);
        assert_eq!(h.nv().pm().stats().fences - before, 1);
        assert_eq!(v.get(&mut h, 3), 97);
        assert_eq!(v.get(&mut h, 97), 3);
        v.swap(&mut h, 5, 5); // no-op swap commits nothing
        assert_eq!(v.get(&mut h, 5), 5);
    }

    #[test]
    fn durable_stack_and_queue() {
        let mut h = mh();
        let mut s = DurableStack::create(&mut h, 0);
        let mut q = DurableQueue::create(&mut h, 1);
        for i in 0..5 {
            s.push(&mut h, i);
            q.enqueue(&mut h, i);
        }
        assert_eq!(s.pop(&mut h), Some(4));
        assert_eq!(q.dequeue(&mut h), Some(0));
        assert_eq!(s.peek(&mut h), Some(3));
        assert_eq!(q.peek(&mut h), Some(1));
        assert_eq!(s.len(&mut h), 4);
        assert_eq!(q.len(&mut h), 4);
    }

    #[test]
    fn set_duplicate_insert_does_not_commit() {
        let mut h = mh();
        let mut s = DurableSet::create(&mut h, 0);
        assert!(s.insert(&mut h, 9));
        let fences = h.nv().pm().stats().fences;
        assert!(!s.insert(&mut h, 9));
        assert_eq!(h.nv().pm().stats().fences, fences, "no FASE for a no-op");
        assert_eq!(s.len(&mut h), 1);
    }

    #[test]
    fn survives_crash_and_reopen() {
        let mut h = mh();
        let mut m = DurableMap::create(&mut h, 0);
        let mut q = DurableQueue::create(&mut h, 1);
        for i in 0..20u64 {
            m.insert(&mut h, i, &i.to_le_bytes());
            q.enqueue(&mut h, i);
        }
        h.quiesce();
        let pm = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let (mut h2, _) = recover(
            pm,
            &[
                RootSpec::new(0, RootKind::Map),
                RootSpec::new(1, RootKind::Queue),
            ],
        );
        let m2 = DurableMap::open(&mut h2, 0);
        let mut q2 = DurableQueue::open(&mut h2, 1);
        assert_eq!(m2.len(&mut h2), 20);
        assert_eq!(m2.get(&mut h2, 13), Some(13u64.to_le_bytes().to_vec()));
        assert_eq!(q2.dequeue(&mut h2), Some(0));
        assert_eq!(q2.len(&mut h2), 19);
    }

    #[test]
    fn steady_state_memory_is_bounded() {
        // Version churn must not grow the heap: deferred reclamation keeps
        // at most one superseded version alive.
        let mut h = mh();
        let mut m = DurableMap::create(&mut h, 0);
        for i in 0..50u64 {
            m.insert(&mut h, i % 4, b"overwritten-repeatedly");
        }
        h.quiesce();
        let live_after_50 = h.nv().stats().live_bytes;
        for i in 0..500u64 {
            m.insert(&mut h, i % 4, b"overwritten-repeatedly");
        }
        h.quiesce();
        let live_after_550 = h.nv().stats().live_bytes;
        assert_eq!(live_after_50, live_after_550, "no leak under churn");
    }
}
