//! Lock-free MPSC handoff queue for staged FASEs.
//!
//! Worker threads finish staging a FASE with no shared lock; the staged
//! result still has to reach the (serialized) commit stage. That handoff
//! is this queue: a Treiber stack with multi-producer lock-free
//! [`HandoffQueue::push`] (one CAS, no allocation beyond the node) and a
//! single-consumer [`HandoffQueue::drain`] that detaches the whole stack
//! with one atomic swap and reverses it, yielding the elements in
//! **push (FIFO) order** — the order batch merging relies on: a worker
//! publishes its staging-lane heads *before* pushing, so any FASE
//! chaining on those heads pushes later and therefore drains later.
//!
//! The queue is deliberately minimal — unbounded, no pop-one, no
//! blocking — because the commit stage always drains whole batches.
//! Memory ordering: `push` releases the node, the drain `swap` acquires
//! the chain, so everything written before a push happens-before the
//! drainer's reads. Verified under miri (the nightly CI job runs these
//! tests specifically).

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A lock-free multi-producer, batch-consumer handoff queue (see the
/// module docs).
#[derive(Debug)]
pub struct HandoffQueue<T> {
    head: AtomicPtr<Node<T>>,
}

// SAFETY: the queue moves owned `T`s between threads; nodes are heap
// allocations reachable from exactly one place at a time (the stack, a
// drained chain, or a Box being returned).
unsafe impl<T: Send> Send for HandoffQueue<T> {}
unsafe impl<T: Send> Sync for HandoffQueue<T> {}

impl<T> HandoffQueue<T> {
    /// An empty queue.
    pub fn new() -> HandoffQueue<T> {
        HandoffQueue {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes `value` (lock-free; any thread).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // shared.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Whether the queue currently appears empty (racy by nature; exact
    /// once producers are quiescent).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Detaches everything pushed so far and returns it in push (FIFO)
    /// order. Single logical consumer: concurrent drains are safe but
    /// split the elements between them.
    pub fn drain(&self) -> Vec<T> {
        let mut cur = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !cur.is_null() {
            // SAFETY: the swap made this chain exclusively ours; each
            // node was created by `push` via Box::into_raw.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            out.push(node.value);
        }
        // The stack pops newest-first; batches merge oldest-first.
        out.reverse();
        out
    }
}

impl<T> Default for HandoffQueue<T> {
    fn default() -> HandoffQueue<T> {
        HandoffQueue::new()
    }
}

impl<T> Drop for HandoffQueue<T> {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn drain_returns_push_order() {
        let q = HandoffQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.drain(), (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }

    #[test]
    fn interleaved_push_drain_loses_nothing() {
        let q = HandoffQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.drain(), vec![1, 2]);
        q.push(3);
        assert_eq!(q.drain(), vec![3]);
    }

    #[test]
    fn concurrent_producers_deliver_everything_in_program_order() {
        let q = Arc::new(HandoffQueue::new());
        let n_producers = 4;
        let per = 500u64;
        let threads: Vec<_> = (0..n_producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.push((p as u64) << 32 | i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let drained = q.drain();
        assert_eq!(drained.len(), (n_producers as u64 * per) as usize);
        // Per-producer FIFO: each producer's items appear in push order.
        for p in 0..n_producers as u64 {
            let seq: Vec<u64> = drained
                .iter()
                .filter(|&&v| v >> 32 == p)
                .map(|&v| v & 0xFFFF_FFFF)
                .collect();
            assert_eq!(seq, (0..per).collect::<Vec<_>>(), "producer {p}");
        }
    }

    #[test]
    fn concurrent_drain_races_split_but_never_lose() {
        let q = Arc::new(HandoffQueue::new());
        let total = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for p in 0..3u64 {
            let q = Arc::clone(&q);
            threads.push(std::thread::spawn(move || {
                for i in 0..200 {
                    q.push(p * 1000 + i);
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let total = Arc::clone(&total);
            threads.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    total.fetch_add(q.drain().len(), Ordering::Relaxed);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        total.fetch_add(q.drain().len(), Ordering::Relaxed);
        assert_eq!(total.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn drop_reclaims_undrained_nodes() {
        // Run under miri (nightly CI) to prove no leak and no
        // use-after-free in the node lifecycle.
        let q = HandoffQueue::new();
        for i in 0..100 {
            q.push(vec![i; 10]);
        }
        drop(q);
    }

    #[test]
    fn happens_before_from_push_to_drain() {
        // Data written before a push must be visible to the drainer.
        let q = Arc::new(HandoffQueue::new());
        let cell = Arc::new(AtomicUsize::new(0));
        let producer = {
            let q = Arc::clone(&q);
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                cell.store(42, Ordering::Relaxed);
                q.push(Arc::clone(&cell));
            })
        };
        producer.join().unwrap();
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].load(Ordering::Relaxed), 42);
    }
}
