//! Type-erased datastructure handles and the [`DurableDs`] trait.
//!
//! Commit protocols and recovery need to reclaim and mark datastructures
//! whose concrete types differ (a FASE can update a map and a queue).
//! [`DurableDs`] abstracts over the five MOD handle types; [`ErasedDs`]
//! carries a handle as a `(kind, root)` pair that can be persisted (parent
//! objects, recovery directories) and dispatched at runtime.

use crate::parent;
use mod_alloc::NvHeap;
use mod_funcds::{PmMap, PmQueue, PmSet, PmStack, PmVector};
use mod_pmem::PmPtr;

/// The persistent type of a root slot or parent-object child.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum RootKind {
    /// [`PmMap`].
    Map,
    /// [`PmSet`].
    Set,
    /// [`PmVector`].
    Vector,
    /// [`PmStack`].
    Stack,
    /// [`PmQueue`].
    Queue,
    /// A parent object grouping sibling datastructures (Fig 8c).
    Parent,
    /// The persistent spine of a hybrid ("Don't Persist All") root: a
    /// chain of per-op records replayed at recovery to rebuild the
    /// volatile index (see [`crate::spine`]).
    Spine,
}

impl RootKind {
    /// Stable on-PM encoding.
    pub fn to_u64(self) -> u64 {
        match self {
            RootKind::Map => 1,
            RootKind::Set => 2,
            RootKind::Vector => 3,
            RootKind::Stack => 4,
            RootKind::Queue => 5,
            RootKind::Parent => 6,
            RootKind::Spine => 7,
        }
    }

    /// Decodes the on-PM encoding.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag (corruption).
    pub fn from_u64(v: u64) -> RootKind {
        match v {
            1 => RootKind::Map,
            2 => RootKind::Set,
            3 => RootKind::Vector,
            4 => RootKind::Stack,
            5 => RootKind::Queue,
            6 => RootKind::Parent,
            7 => RootKind::Spine,
            _ => panic!("corrupt RootKind tag {v}"),
        }
    }
}

/// A MOD datastructure version handle: a pointer to an immutable root
/// object plus the operations commit and recovery need.
///
/// Implemented by the five `mod-funcds` handle types. Downstream crates
/// adding new MOD datastructures (per the paper's §4.2 recipe) implement
/// this to plug into the commit interfaces.
pub trait DurableDs: Copy {
    /// The runtime kind tag.
    const KIND: RootKind;

    /// The version's root object pointer.
    fn root_ptr(&self) -> PmPtr;

    /// Rebuilds a handle from a root pointer.
    fn from_root_ptr(root: PmPtr) -> Self;

    /// Releases this version's reference to its data (refcounted).
    fn release_version(self, nv: &mut NvHeap);

    /// Marks this version's blocks during recovery GC.
    fn mark_version(&self, nv: &mut NvHeap);

    /// Erases the handle for heterogeneous contexts.
    fn erase(&self) -> ErasedDs {
        ErasedDs {
            kind: Self::KIND,
            root: self.root_ptr(),
        }
    }
}

macro_rules! impl_durable_ds {
    ($ty:ty, $kind:expr) => {
        impl DurableDs for $ty {
            const KIND: RootKind = $kind;

            fn root_ptr(&self) -> PmPtr {
                self.root()
            }

            fn from_root_ptr(root: PmPtr) -> Self {
                <$ty>::from_root(root)
            }

            fn release_version(self, nv: &mut NvHeap) {
                self.release(nv)
            }

            fn mark_version(&self, nv: &mut NvHeap) {
                self.mark(nv)
            }
        }
    };
}

impl_durable_ds!(PmMap, RootKind::Map);
impl_durable_ds!(PmSet, RootKind::Set);
impl_durable_ds!(PmVector, RootKind::Vector);
impl_durable_ds!(PmStack, RootKind::Stack);
impl_durable_ds!(PmQueue, RootKind::Queue);

/// A type-erased version handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct ErasedDs {
    /// The datastructure's kind.
    pub kind: RootKind,
    /// The version's root object pointer.
    pub root: PmPtr,
}

impl ErasedDs {
    /// Releases the version's reference to its data.
    pub fn release(self, nv: &mut NvHeap) {
        match self.kind {
            RootKind::Map => PmMap::from_root(self.root).release(nv),
            RootKind::Set => PmSet::from_root(self.root).release(nv),
            RootKind::Vector => PmVector::from_root(self.root).release(nv),
            RootKind::Stack => PmStack::from_root(self.root).release(nv),
            RootKind::Queue => PmQueue::from_root(self.root).release(nv),
            RootKind::Parent => parent::release_parent(nv, self.root),
            RootKind::Spine => crate::spine::release_record(nv, self.root),
        }
    }

    /// Marks the version's blocks during recovery GC.
    pub fn mark(&self, nv: &mut NvHeap) {
        match self.kind {
            RootKind::Map => PmMap::from_root(self.root).mark(nv),
            RootKind::Set => PmSet::from_root(self.root).mark(nv),
            RootKind::Vector => PmVector::from_root(self.root).mark(nv),
            RootKind::Stack => PmStack::from_root(self.root).mark(nv),
            RootKind::Queue => PmQueue::from_root(self.root).mark(nv),
            RootKind::Parent => parent::mark_parent(nv, self.root),
            RootKind::Spine => crate::spine::mark_record(nv, self.root),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in [
            RootKind::Map,
            RootKind::Set,
            RootKind::Vector,
            RootKind::Stack,
            RootKind::Queue,
            RootKind::Parent,
            RootKind::Spine,
        ] {
            assert_eq!(RootKind::from_u64(k.to_u64()), k);
        }
    }

    #[test]
    #[should_panic(expected = "corrupt RootKind")]
    fn bad_kind_panics() {
        RootKind::from_u64(99);
    }

    #[test]
    fn erase_carries_kind_and_root() {
        use mod_pmem::{Pmem, PmemConfig};
        let mut nv = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let m = PmMap::empty(&mut nv);
        let e = m.erase();
        assert_eq!(e.kind, RootKind::Map);
        assert_eq!(e.root, m.root());
    }
}
