//! The persistent heap: allocation, deallocation, root slots and the
//! volatile reference-count table.

use crate::annex::RootAnnex;
use crate::layout::{
    class_index, class_size, is_volatile_shape, root_slot_offset, volatile_class_size, BLOCK_MAGIC,
    HEADER_BYTES, HEAP_BASE, MIN_BLOCK, POOL_MAGIC, SIZE_CLASSES,
};
use crate::recovery::MarkState;
use crate::worker::{AllocDelta, SplitState, StagedAllocEffects, WorkerMode};
use mod_pmem::{PmPtr, Pmem};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Allocation statistics, the data source of Table 3.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (payload class sizes, excl. headers).
    pub live_bytes: u64,
    /// Number of live blocks.
    pub live_blocks: u64,
    /// High-water mark of `live_bytes`.
    pub hwm_live_bytes: u64,
    /// Total payload bytes ever allocated (allocation traffic).
    pub cumulative_alloc_bytes: u64,
    /// Number of allocations performed.
    pub allocs: u64,
    /// Number of frees performed.
    pub frees: u64,
}

/// One allocation shard: an arena carved from the pool with its own bump
/// pointer, free lists and statistics, so each worker thread allocates
/// without contending on a shared bump pointer or mixing free lists.
#[derive(Debug)]
struct ShardAlloc {
    free_by_class: Vec<Vec<u64>>,
    /// Arena bounds: `[start, end)` within the pool.
    start: u64,
    end: u64,
    bump: u64,
    stats: AllocStats,
}

/// A persistent heap over a simulated PM pool: an `nvm_malloc` equivalent
/// with segregated free lists, 64 persistent root slots, and a volatile
/// reference-count table (paper §5.3 — counts are *not* stored durably;
/// they are rebuilt from reachability during recovery).
///
/// All heap metadata needed after a crash lives in PM (block headers);
/// everything else (free lists, refcounts, the bump pointer) is volatile
/// and reconstructed by recovery.
///
/// Two sharding modes exist: [`NvHeap::configure_shards`] keeps one
/// heap object with per-shard arenas (single-threaded attribution), and
/// [`NvHeap::split_workers`] checks arenas out as independent worker
/// heaps for genuinely lock-free multi-threaded staging (see
/// `mod-core`'s `SharedModHeap` and [`crate::worker`]).
#[derive(Debug)]
pub struct NvHeap {
    pm: Pmem,
    free_by_class: Vec<Vec<u64>>,
    /// Coalesced free space discovered by recovery: start → length.
    regions: BTreeMap<u64, u64>,
    bump: u64,
    rc: HashMap<u64, u32>,
    stats: AllocStats,
    /// Allocation shards (empty unless [`NvHeap::configure_shards`] ran).
    shards: Vec<ShardAlloc>,
    active_shard: usize,
    /// Worker-mode state (this heap is a checked-out shard; see
    /// [`NvHeap::split_workers`]).
    worker: Option<WorkerMode>,
    /// Commit-side view of a worker split (this heap issued
    /// [`NvHeap::split_workers`]).
    split: Option<SplitState>,
    /// Depth of nested [`NvHeap::begin_volatile`] scopes: while > 0,
    /// allocations land in the volatile node cache.
    volatile_depth: u32,
    /// Free lists for volatile-shaped blocks (64-aligned, whole-line
    /// footprint; see [`crate::layout::is_volatile_shape`]), keyed by
    /// exact class size.
    volatile_free: HashMap<u64, Vec<u64>>,
    /// Volatile heads of hybrid roots, shared by every heap handle over
    /// this pool (see [`RootAnnex`]).
    annex: Arc<RootAnnex>,
    pub(crate) mark: Option<MarkState>,
}

impl NvHeap {
    /// The one constructor behind every open-from-image path: fresh
    /// volatile state (free lists, refcounts, bump pointer) over an
    /// existing pool image, in recovery mode or ready to allocate.
    /// [`NvHeap::format`], [`NvHeap::open`] and the worker heaps of
    /// [`NvHeap::split_workers`] all funnel through here, so a pool
    /// image rebuilt from disk ([`mod_pmem::Pmem::open_file`]) gets the
    /// exact same heap object as one opened from a crash image. That
    /// holds for pool *sets* too: a sharded journal is replayed by
    /// parallel scan threads and merged by global batch sequence before
    /// this constructor ever sees the image, so the heap (and the typed
    /// recovery that follows) is bit-identical to a single-journal open.
    fn from_pool(pm: Pmem, recovering: bool) -> NvHeap {
        NvHeap {
            pm,
            free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
            regions: BTreeMap::new(),
            bump: HEAP_BASE,
            rc: HashMap::new(),
            stats: AllocStats::default(),
            shards: Vec::new(),
            active_shard: 0,
            worker: None,
            split: None,
            volatile_depth: 0,
            volatile_free: HashMap::new(),
            annex: Arc::new(RootAnnex::new()),
            mark: recovering.then(MarkState::default),
        }
    }

    /// A read-only view over the same storage: a fresh heap object whose
    /// `Pmem` handle shares this heap's pool (word-atomic shared arena)
    /// but owns private volatile sim state. The view carries no free
    /// lists, refcounts, or bump authority — it exists solely so
    /// `peek_*` traversals can run on other threads without touching
    /// this heap's allocator state. Callers must only invoke `&self`
    /// peek methods on it.
    pub fn read_view(&self) -> NvHeap {
        let mut view = NvHeap::from_pool(self.pm.fork_handle(), false);
        view.annex = Arc::clone(&self.annex);
        view
    }

    /// Formats a fresh pool: writes the pool header, zeroes the root
    /// slots, and makes both durable.
    pub fn format(mut pm: Pmem) -> NvHeap {
        pm.trace_alloc(0, HEAP_BASE); // metadata region is "allocated"
        pm.write_u64(0, POOL_MAGIC);
        pm.write_u64(8, pm.capacity());
        for i in 0..crate::layout::N_ROOTS {
            pm.write_u64(root_slot_offset(i), 0);
        }
        pm.flush_range(0, HEAP_BASE);
        pm.sfence();
        NvHeap::from_pool(pm, false)
    }

    /// Opens an existing pool after a (simulated) restart or crash. The
    /// heap starts in *recovery mode*: callers must mark every reachable
    /// block via [`NvHeap::mark_block`] and then call
    /// [`NvHeap::finish_recovery`] before allocating.
    ///
    /// # Panics
    ///
    /// Panics if the pool header magic is invalid (not a formatted pool).
    pub fn open(mut pm: Pmem) -> NvHeap {
        let magic = pm.read_u64(0);
        assert_eq!(magic, POOL_MAGIC, "not a formatted MOD pool");
        NvHeap::from_pool(pm, true)
    }

    /// Whether the heap is still in recovery mode.
    pub fn in_recovery(&self) -> bool {
        self.mark.is_some()
    }

    fn assert_ready(&self) {
        assert!(
            self.mark.is_none(),
            "heap is in recovery mode; finish_recovery() first"
        );
    }

    // ------------------------------------------------------------------
    // Allocation shards
    // ------------------------------------------------------------------

    /// Splits the largest contiguous free span of the pool into `n`
    /// equal arenas, one per shard: each gets its own bump pointer, free
    /// lists and [`AllocStats`]. Also configures `n` shard lanes on the
    /// underlying [`Pmem`]. Shard 0 becomes active; blocks outside the
    /// carved span stay valid (their frees land in the shared free
    /// lists, a fallback for every shard).
    ///
    /// The span is the unallocated tail *or* a coalesced free region
    /// left by recovery, whichever is larger — after a crash/reopen the
    /// bump pointer sits above the highest live block and most free
    /// space lives in the region list, so carving only the tail would
    /// shrink the arenas on every reopen cycle until sharding failed.
    ///
    /// Per-shard statistics attribute traffic to the shard that was
    /// active when it happened; the global [`NvHeap::stats`] roll-up
    /// (Table 3) stays exact regardless of which shard frees a block.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, in recovery mode, if shards are already
    /// configured, or if the largest free span is too small to give
    /// every shard a useful arena.
    pub fn configure_shards(&mut self, n: usize) {
        self.assert_ready();
        assert!(n > 0, "need at least one shard");
        assert!(self.shards.is_empty(), "shards already configured");
        let tail = (self.bump, self.pm.capacity() - self.bump);
        let (base, len) = self
            .regions
            .iter()
            .map(|(&s, &l)| (s, l))
            .chain(std::iter::once(tail))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        let per = (len / n as u64) & !15;
        assert!(
            per >= 64 * MIN_BLOCK,
            "pool too fragmented to shard: largest free span gives {per} bytes per shard"
        );
        if base == self.bump {
            // The span is the tail; the shards own it now.
            self.bump = self.pm.capacity();
        } else {
            self.regions.remove(&base);
        }
        self.shards = (0..n as u64)
            .map(|i| {
                let start = base + i * per;
                ShardAlloc {
                    free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
                    start,
                    // The last shard absorbs the span's alignment
                    // remainder.
                    end: if i == n as u64 - 1 {
                        base + len
                    } else {
                        start + per
                    },
                    bump: start,
                    stats: AllocStats::default(),
                }
            })
            .collect();
        self.active_shard = 0;
        self.pm.configure_shards(n);
    }

    /// Number of configured allocation shards (0 when unsharded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes subsequent allocations (and stats/time attribution, via the
    /// pool's shard lanes) to shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn set_active_shard(&mut self, s: usize) {
        assert!(
            s < self.shards.len().max(1),
            "shard {s} out of range ({} configured)",
            self.shards.len()
        );
        self.active_shard = s;
        if self.pm.shard_count() > 0 {
            self.pm.set_active_shard(s);
        }
    }

    /// The shard currently receiving allocations (0 when unsharded).
    pub fn active_shard(&self) -> usize {
        self.active_shard
    }

    /// Allocation statistics attributed to shard `s`. Alloc/free counts
    /// and cumulative bytes sum exactly to the global [`NvHeap::stats`]
    /// for traffic since sharding; `live_*` is approximate per shard when
    /// blocks are freed by a different shard than allocated them (the
    /// global roll-up stays exact).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn shard_stats(&self, s: usize) -> &AllocStats {
        &self.shards[s].stats
    }

    /// The shard whose arena contains `addr`, if any.
    fn shard_of_addr(&self, addr: u64) -> Option<usize> {
        if self.shards.is_empty() || addr < self.shards[0].start {
            return None;
        }
        self.shards
            .iter()
            .position(|s| addr >= s.start && addr < s.end)
    }

    // ------------------------------------------------------------------
    // Worker split (lock-free staging)
    // ------------------------------------------------------------------

    /// Checks one allocation shard out to each of `n` worker threads and
    /// returns the worker heaps. Each worker heap owns
    ///
    /// * a 64-byte-aligned arena carved from the pool's largest free
    ///   span (private bump pointer + free lists: allocation never
    ///   contends), and
    /// * a [`Pmem`] shard handle sharing this pool's storage with a
    ///   private simulated timeline (clock, caches, line table, WPQ).
    ///
    /// This heap keeps the last slice of the span for commit-side
    /// allocation (root directories) and becomes the *commit-side* heap:
    /// its [`NvHeap::free`] routes blocks inside a worker arena to that
    /// shard's return bin, where the owner drains them on its next
    /// arena miss. Worker heaps defer all cross-shard effects to
    /// [`NvHeap::take_staged_effects`] /
    /// [`NvHeap::apply_staged_effects`] (see [`crate::worker`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, in recovery mode, if legacy shards or a
    /// previous split are configured, or if the largest free span is too
    /// small to give every worker a useful arena.
    pub fn split_workers(&mut self, n: usize) -> Vec<NvHeap> {
        self.assert_ready();
        assert!(n > 0, "need at least one worker");
        assert!(self.shards.is_empty(), "legacy shards already configured");
        assert!(self.split.is_none(), "workers already split");
        assert!(self.worker.is_none(), "cannot split a worker heap");
        let tail = (self.bump, self.pm.capacity() - self.bump);
        let (base, len) = self
            .regions
            .iter()
            .map(|(&s, &l)| (s, l))
            .chain(std::iter::once(tail))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        // Word-disjointness across concurrent writers requires 64-byte
        // aligned arena bounds (cacheline handoffs stay per-shard too).
        let abase = (base + 63) & !63;
        let alen = len - (abase - base);
        let per = (alen / (n as u64 + 1)) & !63;
        assert!(
            per >= 64 * MIN_BLOCK,
            "pool too fragmented to split: largest free span gives {per} bytes per worker"
        );
        if base == self.bump {
            // The span was the tail: workers own the first n slices, the
            // commit side keeps bumping in the remainder.
            self.bump = abase + n as u64 * per;
        } else {
            self.regions.remove(&base);
            self.regions.insert(
                abase + n as u64 * per,
                len - (abase - base) - n as u64 * per,
            );
        }
        let bins: Arc<Vec<Mutex<Vec<u64>>>> =
            Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let mut arenas = Vec::with_capacity(n);
        let workers = (0..n as u64)
            .map(|i| {
                let start = abase + i * per;
                let end = start + per;
                arenas.push(Some((start, end)));
                let mut w = NvHeap::from_pool(self.pm.fork_handle(), false);
                // The global-bump fallback must never fire on a worker:
                // point it at the capacity so exhaustion panics loudly
                // instead of clobbering the pool.
                w.bump = self.pm.capacity();
                w.annex = Arc::clone(&self.annex);
                w.shards = vec![ShardAlloc {
                    free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
                    start,
                    end,
                    bump: start,
                    stats: AllocStats::default(),
                }];
                w.worker = Some(WorkerMode {
                    home: i as usize,
                    bins: Arc::clone(&bins),
                    rc_deltas: HashMap::new(),
                    fase_allocs: Vec::new(),
                    foreign_frees: Vec::new(),
                    stats_mark: AllocStats::default(),
                });
                w
            })
            .collect();
        self.split = Some(SplitState { arenas, bins });
        workers
    }

    /// Whether this heap is a checked-out worker shard.
    pub fn is_worker(&self) -> bool {
        self.worker.is_some()
    }

    /// The worker's shard index.
    ///
    /// # Panics
    ///
    /// Panics unless this is a worker heap.
    pub fn worker_home(&self) -> usize {
        self.worker.as_ref().expect("not a worker heap").home
    }

    /// Number of worker arenas still checked out.
    pub fn split_workers_outstanding(&self) -> usize {
        self.split
            .as_ref()
            .map_or(0, |s| s.arenas.iter().flatten().count())
    }

    /// Drains a worker's accumulated cross-shard side effects — fresh
    /// blocks' authoritative refcounts, foreign-block increments,
    /// deferred foreign frees and the stats delta since the previous
    /// handoff — for transfer to the commit stage. The worker's FASE log
    /// resets.
    ///
    /// # Panics
    ///
    /// Panics unless this is a worker heap.
    pub fn take_staged_effects(&mut self) -> StagedAllocEffects {
        assert!(self.worker.is_some(), "take_staged_effects on non-worker");
        let rc_transfer: Vec<(u64, u32)> = self.rc.drain().collect();
        let stats_now = self.stats.clone();
        let w = self.worker.as_mut().unwrap();
        let fx = StagedAllocEffects {
            rc_transfer,
            rc_deltas: w.rc_deltas.drain().collect(),
            foreign_frees: std::mem::take(&mut w.foreign_frees),
            stats: AllocDelta::between(&w.stats_mark, &stats_now),
        };
        w.fase_allocs.clear();
        w.stats_mark = stats_now;
        fx
    }

    /// Rolls back the current FASE on a worker heap: frees every block
    /// it allocated and discards its deferred refcount/free effects.
    /// Used when staging aborts (root-lane conflict) before a retry.
    ///
    /// # Panics
    ///
    /// Panics unless this is a worker heap.
    pub fn abort_fase(&mut self) {
        assert!(self.worker.is_some(), "abort_fase on non-worker");
        let allocs = std::mem::take(&mut self.worker.as_mut().unwrap().fase_allocs);
        for addr in allocs {
            self.rc.remove(&addr);
            self.free_untracked(PmPtr::from_addr(addr));
        }
        let w = self.worker.as_mut().unwrap();
        w.rc_deltas.clear();
        w.foreign_frees.clear();
    }

    /// Applies a worker's [`StagedAllocEffects`] to this (commit-side)
    /// heap, in batch order: refcount authority transfers, foreign
    /// increments land, deferred frees execute.
    ///
    /// # Panics
    ///
    /// Panics on refcount underflow (a release was staged against state
    /// that never transferred).
    pub fn apply_staged_effects(&mut self, fx: StagedAllocEffects) {
        for (addr, count) in fx.rc_transfer {
            let prev = self.rc.insert(addr, count);
            debug_assert!(
                prev.is_none(),
                "rc authority for {addr:#x} transferred twice"
            );
        }
        for (addr, delta) in fx.rc_deltas {
            let e = self.rc.entry(addr).or_insert(0);
            let next = *e as i64 + delta;
            assert!(
                next >= 0,
                "refcount underflow at {addr:#x} applying staged delta"
            );
            *e = next as u32;
        }
        for addr in fx.foreign_frees {
            self.free(PmPtr::from_addr(addr));
        }
        fx.stats.apply_to(&mut self.stats);
    }

    /// Absorbs a finished worker heap back into this commit-side heap:
    /// outstanding side effects apply, the arena's remaining space and
    /// free lists (and its return bin) rejoin the global pools, and the
    /// worker's PM handle merges its leftover line states and trace.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a worker of this heap's split.
    pub fn absorb_worker(&mut self, mut w: NvHeap) {
        let home = w.worker_home();
        let fx = w.take_staged_effects();
        self.apply_staged_effects(fx);
        self.pm.absorb_lines(w.pm.take_lines());
        self.pm.append_trace(w.pm.take_trace());
        let shard = w.shards.pop().expect("worker heap has one shard");
        let split = self.split.as_mut().expect("absorb_worker without a split");
        assert!(
            split.arenas.get(home).is_some_and(|a| a.is_some()),
            "worker {home} already absorbed"
        );
        split.arenas[home] = None;
        let bin = std::mem::take(&mut *split.bins[home].lock().unwrap());
        for (idx, list) in shard.free_by_class.into_iter().enumerate() {
            self.free_by_class[idx].extend(list);
        }
        for (class, list) in w.volatile_free.drain() {
            self.volatile_free.entry(class).or_default().extend(list);
        }
        for hdr in bin {
            let class = self.pm.peek_u64(hdr);
            self.stash_free_block(hdr, class, false);
        }
        if shard.end - shard.bump >= MIN_BLOCK {
            self.regions.insert(shard.bump, shard.end - shard.bump);
        }
        if self.split_workers_outstanding() == 0 {
            self.split = None;
        }
    }

    /// Frees a block without stats/rc bookkeeping (rollback of a block
    /// this FASE allocated: the alloc-side counters are unwound too, so
    /// the aborted attempt leaves no trace in Table 3).
    fn free_untracked(&mut self, ptr: PmPtr) {
        let class = self.block_len(ptr);
        let hdr = ptr.addr() - HEADER_BYTES;
        let volatile = self.pm.is_volatile(hdr);
        if volatile {
            self.pm.clear_volatile(hdr, HEADER_BYTES + class);
        } else {
            self.pm.trace_free(hdr, HEADER_BYTES + class);
        }
        let s = &mut self.shards[0];
        s.stats.allocs -= 1;
        s.stats.live_blocks -= 1;
        s.stats.live_bytes -= class;
        s.stats.cumulative_alloc_bytes -= class;
        self.stats.allocs -= 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= class;
        self.stats.cumulative_alloc_bytes -= class;
        if volatile {
            self.volatile_free.entry(class).or_default().push(hdr);
        } else if let Some(idx) = class_index(class) {
            self.shards[0].free_by_class[idx].push(hdr);
        } else {
            self.regions.insert(hdr, HEADER_BYTES + class);
        }
    }

    // ------------------------------------------------------------------
    // Volatile node cache ("Don't Persist All" hybrid roots)
    // ------------------------------------------------------------------

    /// Enters a volatile allocation scope: until the matching
    /// [`NvHeap::end_volatile`], every [`NvHeap::alloc`] produces a
    /// *volatile node-cache block* — 64-byte aligned with a whole-line
    /// footprint, its lines marked volatile on the pool so stores,
    /// flushes and journaling are all elided (see
    /// [`mod_pmem::Pmem::mark_volatile`]). Scopes nest.
    pub fn begin_volatile(&mut self) {
        self.volatile_depth += 1;
    }

    /// Leaves a volatile allocation scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn end_volatile(&mut self) {
        assert!(
            self.volatile_depth > 0,
            "end_volatile without begin_volatile"
        );
        self.volatile_depth -= 1;
    }

    /// Whether a volatile allocation scope is open.
    pub fn in_volatile(&self) -> bool {
        self.volatile_depth > 0
    }

    /// The pool's shared volatile root annex (committed volatile heads
    /// of hybrid roots; one instance per pool, cloned into every worker
    /// heap and read view).
    pub fn annex(&self) -> &Arc<RootAnnex> {
        &self.annex
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` payload bytes, returning the payload pointer. The
    /// block header is written (but not flushed — a subsequent
    /// [`NvHeap::flush_block`] covers it). The new block starts with a
    /// volatile reference count of 1.
    ///
    /// # Panics
    ///
    /// Panics on pool exhaustion, zero-size requests, or in recovery mode.
    pub fn alloc(&mut self, len: u64) -> PmPtr {
        self.assert_ready();
        let volatile = self.volatile_depth > 0;
        let class = if volatile {
            volatile_class_size(len)
        } else {
            class_size(len)
        };
        let hdr = if volatile {
            self.take_block_volatile(class)
        } else {
            self.take_block(class)
        };
        let payload = hdr + HEADER_BYTES;
        if volatile {
            // Mark before the header store so nothing below charges the
            // model: a volatile node block is DRAM state, not simulated
            // PM traffic (and not §5.4 trace material either).
            self.pm.mark_volatile(hdr, HEADER_BYTES + class);
        } else {
            self.pm.trace_alloc(hdr, HEADER_BYTES + class);
            // 15 ns models nvm_malloc's bin bookkeeping.
            self.pm.charge_ns(15.0);
        }
        // Header: [class size][magic ^ class] — integrity-checkable at
        // recovery.
        self.pm.write_u64(hdr, class);
        self.pm.write_u64(hdr + 8, BLOCK_MAGIC ^ class);
        self.rc.insert(payload, 1);
        self.stats.allocs += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += class;
        self.stats.cumulative_alloc_bytes += class;
        self.stats.hwm_live_bytes = self.stats.hwm_live_bytes.max(self.stats.live_bytes);
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            let s = &mut shard.stats;
            s.allocs += 1;
            s.live_blocks += 1;
            s.live_bytes += class;
            s.cumulative_alloc_bytes += class;
            s.hwm_live_bytes = s.hwm_live_bytes.max(s.live_bytes);
        }
        if let Some(w) = self.worker.as_mut() {
            w.fase_allocs.push(payload);
        }
        PmPtr::from_addr(payload)
    }

    fn take_block(&mut self, class: u64) -> u64 {
        let need = HEADER_BYTES + class;
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            if let Some(idx) = class_index(class) {
                if let Some(hdr) = shard.free_by_class[idx].pop() {
                    return hdr;
                }
            }
            if shard.bump + need <= shard.end {
                let hdr = shard.bump;
                shard.bump += need;
                return hdr;
            }
            // Arena exhausted: fall through to the shared free lists and
            // pre-sharding regions before giving up.
        }
        if let Some((bins, home)) = self.worker.as_ref().map(|w| (Arc::clone(&w.bins), w.home)) {
            // Drain the return bin — blocks of ours the commit stage
            // freed — into the local free lists, then retry.
            let returned = std::mem::take(&mut *bins[home].lock().unwrap());
            if !returned.is_empty() {
                for hdr in returned {
                    let c = self.pm.peek_u64(hdr);
                    self.stash_free_block(hdr, c, true);
                }
                if let Some(idx) = class_index(class) {
                    if let Some(hdr) = self.shards[0].free_by_class[idx].pop() {
                        return hdr;
                    }
                }
            }
        }
        if let Some(idx) = class_index(class) {
            if let Some(hdr) = self.free_by_class[idx].pop() {
                return hdr;
            }
        }
        // A volatile-shaped block serves a persistent request of the same
        // class fine (its alignment is harmless; its marks were cleared
        // at free time).
        if let Some(hdr) = self.volatile_free.get_mut(&class).and_then(|l| l.pop()) {
            return hdr;
        }
        // First-fit from recovered regions.
        if let Some((&start, &rlen)) = self.regions.iter().find(|&(_, &rlen)| rlen >= need) {
            self.regions.remove(&start);
            let rest = rlen - need;
            if rest >= MIN_BLOCK {
                self.regions.insert(start + need, rest);
            }
            return start;
        }
        // Steal bump space from the sibling shard with the most arena
        // left: a skewed workload must not die of "pool exhausted" while
        // other arenas sit empty. (Ownership follows the address, so the
        // stolen block's frees return to the donor shard's lists.)
        if let Some(i) = (0..self.shards.len())
            .filter(|&i| self.shards[i].end - self.shards[i].bump >= need)
            .max_by_key(|&i| self.shards[i].end - self.shards[i].bump)
        {
            let hdr = self.shards[i].bump;
            self.shards[i].bump += need;
            return hdr;
        }
        // Bump allocation.
        assert!(
            self.worker.is_none(),
            "worker shard arena exhausted ({} bytes requested): grow the pool \
             or reduce per-worker churn",
            need
        );
        let hdr = self.bump;
        assert!(
            hdr + need <= self.pm.capacity(),
            "persistent pool exhausted: bump {hdr:#x} + {need} > capacity {:#x}",
            self.pm.capacity()
        );
        self.bump += need;
        hdr
    }

    /// Takes a volatile-shaped block: 64-byte aligned header, whole-line
    /// footprint. Recycles from the volatile free lists first, then bump
    /// allocates with the alignment gap (if any) returned to the region
    /// list.
    fn take_block_volatile(&mut self, class: u64) -> u64 {
        let need = HEADER_BYTES + class;
        debug_assert_eq!(need % 64, 0);
        if let Some(hdr) = self.volatile_free.get_mut(&class).and_then(|l| l.pop()) {
            return hdr;
        }
        if self.shards.get(self.active_shard).is_some() {
            let shard = &self.shards[self.active_shard];
            let aligned = (shard.bump + 63) & !63;
            if aligned + need <= shard.end {
                let (old_bump, gap) = (shard.bump, aligned - shard.bump);
                let shard = &mut self.shards[self.active_shard];
                shard.bump = aligned + need;
                if gap >= MIN_BLOCK {
                    self.regions.insert(old_bump, gap);
                }
                return aligned;
            }
        }
        if let Some((bins, home)) = self.worker.as_ref().map(|w| (Arc::clone(&w.bins), w.home)) {
            // Drain the return bin (blocks of ours the commit stage
            // freed) and retry: recycled node blocks come back this way.
            let returned = std::mem::take(&mut *bins[home].lock().unwrap());
            if !returned.is_empty() {
                for hdr in returned {
                    let c = self.pm.peek_u64(hdr);
                    self.stash_free_block(hdr, c, true);
                }
                if let Some(hdr) = self.volatile_free.get_mut(&class).and_then(|l| l.pop()) {
                    return hdr;
                }
            }
        }
        assert!(
            self.worker.is_none(),
            "worker shard arena exhausted ({need} bytes requested, volatile): \
             grow the pool or reduce per-worker churn"
        );
        let aligned = (self.bump + 63) & !63;
        assert!(
            aligned + need <= self.pm.capacity(),
            "persistent pool exhausted: bump {aligned:#x} + {need} > capacity {:#x}",
            self.pm.capacity()
        );
        let gap = aligned - self.bump;
        if gap >= MIN_BLOCK {
            self.regions.insert(self.bump, gap);
        }
        self.bump = aligned + need;
        aligned
    }

    /// Routes a freed (or recycled-from-bin) block into the right free
    /// pool: volatile-shaped blocks into the volatile lists, exact
    /// classes into the shard/global segregated lists, everything else
    /// into the region map. `to_shard` prefers the worker's own shard
    /// lists for class blocks.
    fn stash_free_block(&mut self, hdr: u64, class: u64, to_shard: bool) {
        if is_volatile_shape(hdr, class) {
            self.volatile_free.entry(class).or_default().push(hdr);
            return;
        }
        match class_index(class) {
            Some(idx) if to_shard && !self.shards.is_empty() => {
                self.shards[0].free_by_class[idx].push(hdr)
            }
            Some(idx) => self.free_by_class[idx].push(hdr),
            None => {
                self.regions.insert(hdr, HEADER_BYTES + class);
            }
        }
    }

    /// Frees the block at `ptr` (payload pointer), returning its payload
    /// to the free lists. Removes any refcount entry.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is null or its header fails the integrity check.
    pub fn free(&mut self, ptr: PmPtr) {
        self.assert_ready();
        assert!(!ptr.is_null(), "freeing null PmPtr");
        if self.worker.is_some() {
            let hdr = ptr.addr() - HEADER_BYTES;
            let own_arena = self.shard_of_addr(hdr).is_some();
            if let Some(w) = self.worker.as_mut() {
                if !own_arena {
                    // Foreign block: the authoritative free (rc removal,
                    // list routing, stats) runs commit-side, in batch
                    // order.
                    w.foreign_frees.push(ptr.addr());
                    return;
                }
                // Own arena: unwind the FASE rollback log.
                if let Some(i) = w.fase_allocs.iter().position(|&a| a == ptr.addr()) {
                    w.fase_allocs.swap_remove(i);
                }
            }
        }
        let class = self.block_len(ptr);
        let hdr = ptr.addr() - HEADER_BYTES;
        // A volatile node-cache block frees silently: clear its marks
        // (the space must not inherit volatility when recycled) and skip
        // the charge/trace a persistent free pays.
        let volatile = self.pm.is_volatile(hdr);
        if let Some(s) = self.split.as_ref().and_then(|sp| sp.arena_of(hdr)) {
            // Commit-side free of a block inside a checked-out worker
            // arena: bookkeeping here, the space returns via the owner's
            // bin (the owner re-routes it by shape when draining).
            if volatile {
                self.pm.clear_volatile(hdr, HEADER_BYTES + class);
            } else {
                self.pm.trace_free(hdr, HEADER_BYTES + class);
                self.pm.charge_ns(10.0);
            }
            self.rc.remove(&ptr.addr());
            self.stats.frees += 1;
            self.stats.live_blocks -= 1;
            self.stats.live_bytes -= class;
            let split = self.split.as_ref().unwrap();
            split.bins[s].lock().unwrap().push(hdr);
            return;
        }
        if volatile {
            self.pm.clear_volatile(hdr, HEADER_BYTES + class);
        } else {
            self.pm.trace_free(hdr, HEADER_BYTES + class);
            self.pm.charge_ns(10.0);
        }
        self.rc.remove(&ptr.addr());
        if volatile {
            self.volatile_free.entry(class).or_default().push(hdr);
        } else {
            // Blocks return to the free lists of the shard whose arena
            // owns them (locality: that shard's allocations reuse them);
            // blocks predating shard configuration go back to the shared
            // lists.
            let owner = self.shard_of_addr(hdr);
            let list = match (owner, class_index(class)) {
                (Some(s), Some(idx)) => Some(&mut self.shards[s].free_by_class[idx]),
                (None, Some(idx)) => Some(&mut self.free_by_class[idx]),
                (_, None) => None,
            };
            match list {
                Some(l) => l.push(hdr),
                None => {
                    self.regions.insert(hdr, HEADER_BYTES + class);
                }
            }
        }
        self.stats.frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= class;
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            let s = &mut shard.stats;
            s.frees += 1;
            // Cross-shard frees can undercut a shard's own live figures;
            // saturate instead of underflowing (global stats stay exact).
            s.live_blocks = s.live_blocks.saturating_sub(1);
            s.live_bytes = s.live_bytes.saturating_sub(class);
        }
    }

    /// Payload class size of the block at `ptr`, read from its header.
    ///
    /// # Panics
    ///
    /// Panics if the header magic does not match (corruption or a stray
    /// pointer).
    pub fn block_len(&mut self, ptr: PmPtr) -> u64 {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        let magic = self.pm.read_u64(hdr + 8);
        assert_eq!(
            magic,
            BLOCK_MAGIC ^ class,
            "corrupt block header at {hdr:#x}"
        );
        class
    }

    /// Flushes the whole block (header + payload) with unordered `clwb`s.
    pub fn flush_block(&mut self, ptr: PmPtr) {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        self.pm.flush_range(hdr, HEADER_BYTES + class);
    }

    // ------------------------------------------------------------------
    // Volatile reference counts (§5.3)
    // ------------------------------------------------------------------

    /// Increments the volatile refcount of the block at `ptr`. On a
    /// worker heap, increments on foreign (already-published) blocks
    /// accumulate as deltas and apply commit-side in batch order.
    pub fn rc_inc(&mut self, ptr: PmPtr) {
        if !self.rc.contains_key(&ptr.addr()) {
            if let Some(w) = self.worker.as_mut() {
                *w.rc_deltas.entry(ptr.addr()).or_insert(0) += 1;
                return;
            }
        }
        *self.rc.entry(ptr.addr()).or_insert(0) += 1;
    }

    /// Decrements the volatile refcount; returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero/absent (double release), or —
    /// on a worker heap — if the block is foreign: a worker cannot know
    /// a published block's true count, so version releases are deferred
    /// to the commit stage instead of decrementing during staging.
    pub fn rc_dec(&mut self, ptr: PmPtr) -> u32 {
        if self.worker.is_some() && !self.rc.contains_key(&ptr.addr()) {
            panic!(
                "rc_dec on foreign block {ptr} during lock-free staging; \
                 defer the release to the commit stage"
            );
        }
        let c = self
            .rc
            .get_mut(&ptr.addr())
            .unwrap_or_else(|| panic!("rc_dec on untracked block {ptr}"));
        assert!(*c > 0, "refcount underflow at {ptr}");
        *c -= 1;
        *c
    }

    /// Current refcount of a block (0 if untracked).
    pub fn rc_get(&self, ptr: PmPtr) -> u32 {
        self.rc.get(&ptr.addr()).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Root slots
    // ------------------------------------------------------------------

    /// PM address of root slot `i` (for commit-time pointer writes).
    pub fn root_slot_addr(&self, i: usize) -> u64 {
        root_slot_offset(i)
    }

    /// Reads root slot `i`.
    pub fn read_root(&mut self, i: usize) -> PmPtr {
        let a = root_slot_offset(i);
        PmPtr::from_addr(self.pm.read_u64(a))
    }

    /// Reads root slot `i` without touching the cache/time model (see
    /// [`NvHeap::peek_u64`]).
    pub fn peek_root(&self, i: usize) -> PmPtr {
        PmPtr::from_addr(self.pm.peek_u64(root_slot_offset(i)))
    }

    // ------------------------------------------------------------------
    // Pass-throughs to the PM device
    // ------------------------------------------------------------------

    /// The underlying simulated PM pool.
    pub fn pm(&self) -> &Pmem {
        &self.pm
    }

    /// Mutable access to the underlying simulated PM pool.
    pub fn pm_mut(&mut self) -> &mut Pmem {
        &mut self.pm
    }

    /// Consumes the heap, returning the pool (e.g. to build crash images).
    pub fn into_pm(self) -> Pmem {
        self.pm
    }

    /// Reads a `u64` through the cache model.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        self.pm.read_u64(addr)
    }

    /// Writes a `u64` through the cache model.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.pm.write_u64(addr, v)
    }

    /// Reads a `u32` through the cache model.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        self.pm.read_u32(addr)
    }

    /// Writes a `u32` through the cache model.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.pm.write_u32(addr, v)
    }

    /// Reads bytes through the cache model.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.pm.read_bytes(addr, buf)
    }

    /// Writes bytes through the cache model.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        self.pm.write_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector through the cache model.
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        self.pm.read_vec(addr, len)
    }

    /// Reads a `u64` *without* charging the cache/time model.
    ///
    /// Peek reads back the read-only access path of the typed API
    /// (`&ModHeap` lookups): they need no exclusive access and no
    /// instrumentation, exactly like a load from a mapped PM pool.
    pub fn peek_u64(&self, addr: u64) -> u64 {
        self.pm.peek_u64(addr)
    }

    /// Reads a `u32` without charging the cache/time model.
    pub fn peek_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.pm.peek_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Reads bytes without charging the cache/time model.
    pub fn peek_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.pm.peek_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector without charging the
    /// cache/time model.
    pub fn peek_vec(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        self.pm.peek_bytes(addr, &mut buf);
        buf
    }

    /// Issues a `clwb` for the line containing `addr`.
    pub fn clwb(&mut self, addr: u64) {
        self.pm.clwb(addr)
    }

    /// Flushes every line covering the range.
    pub fn flush_range(&mut self, addr: u64, len: u64) {
        self.pm.flush_range(addr, len)
    }

    /// Executes the ordering point.
    pub fn sfence(&mut self) {
        self.pm.sfence()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut AllocStats {
        &mut self.stats
    }

    pub(crate) fn rebuild_volatile(
        &mut self,
        free_by_class: Vec<Vec<u64>>,
        regions: BTreeMap<u64, u64>,
        bump: u64,
        rc: HashMap<u64, u32>,
    ) {
        self.free_by_class = free_by_class;
        self.regions = regions;
        self.bump = bump;
        self.rc = rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::PmemConfig;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn format_writes_magic_durably() {
        let h = heap();
        assert_eq!(h.pm().peek_u64(0), POOL_MAGIC);
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0), POOL_MAGIC);
    }

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let mut h = heap();
        let a = h.alloc(24);
        let b = h.alloc(24);
        assert_ne!(a, b);
        assert_eq!(a.addr() % 16, 0);
        assert_eq!(b.addr() % 16, 0);
        assert!(a.addr() >= HEAP_BASE + HEADER_BYTES);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut h = heap();
        let a = h.alloc(100);
        h.free(a);
        let b = h.alloc(100);
        assert_eq!(a, b, "same class should reuse the freed block");
    }

    #[test]
    fn volatile_alloc_owns_whole_lines_and_is_uncharged() {
        let mut h = heap();
        let t0 = h.pm().clock().now_ns();
        let flushes0 = h.pm().stats().effective_flushes;
        h.begin_volatile();
        let a = h.alloc(24);
        h.end_volatile();
        let hdr = a.addr() - HEADER_BYTES;
        assert_eq!(hdr % 64, 0, "volatile blocks are line-aligned");
        assert_eq!((HEADER_BYTES + h.block_len(a)) % 64, 0);
        assert!(h.pm().is_volatile(hdr));
        assert!(h.pm().is_volatile(a.addr()));
        assert_eq!(
            h.pm().clock().now_ns(),
            t0,
            "volatile alloc charges nothing"
        );
        h.write_u64(a.addr(), 9);
        h.flush_block(a);
        h.sfence();
        assert_eq!(
            h.pm().stats().effective_flushes,
            flushes0,
            "no new real flushes"
        );
        assert!(h.pm().stats().flushes_avoided > 0);
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::PersistAll);
        assert_eq!(
            img.peek_u64(a.addr()),
            0,
            "node cache dies with the process"
        );
    }

    #[test]
    fn volatile_free_recycles_and_clears_marks() {
        let mut h = heap();
        h.begin_volatile();
        let a = h.alloc(24);
        h.end_volatile();
        let hdr = a.addr() - HEADER_BYTES;
        h.free(a);
        assert!(!h.pm().is_volatile(hdr), "marks cleared on free");
        h.begin_volatile();
        let b = h.alloc(30); // same volatile class (48)
        h.end_volatile();
        assert_eq!(a, b, "volatile free list recycles the block");
        assert!(h.pm().is_volatile(hdr), "re-marked on reuse");
        h.free(b);
        // And a persistent alloc of the same class may also take it.
        let c = h.alloc(48);
        assert_eq!(c, a);
        assert!(!h.pm().is_volatile(hdr), "persistent reuse is not volatile");
    }

    #[test]
    fn volatile_and_persistent_blocks_never_share_a_line() {
        let mut h = heap();
        h.begin_volatile();
        let v = h.alloc(10);
        h.end_volatile();
        let p = h.alloc(16);
        h.write_u64(p.addr(), 7);
        h.flush_block(p);
        h.sfence();
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(p.addr()), 7, "neighbor persists normally");
        let vh = v.addr() - HEADER_BYTES;
        let ph = p.addr() - HEADER_BYTES;
        assert_ne!(vh / 64, (ph + HEADER_BYTES + 15) / 64, "disjoint lines");
    }

    #[test]
    #[should_panic(expected = "end_volatile without begin_volatile")]
    fn unbalanced_end_volatile_panics() {
        let mut h = heap();
        h.end_volatile();
    }

    #[test]
    fn worker_volatile_blocks_round_trip_through_commit_free() {
        let mut owner = heap();
        let mut workers = owner.split_workers(2);
        let mut w0 = workers.remove(0);
        w0.begin_volatile();
        let v = w0.alloc(24);
        w0.end_volatile();
        assert!(
            owner.pm().is_volatile(v.addr()),
            "marks shared with the pool"
        );
        let fx = w0.take_staged_effects();
        owner.apply_staged_effects(fx);
        // Commit stage frees the published-then-superseded volatile node.
        owner.free(v);
        assert!(!owner.pm().is_volatile(v.addr()));
        // The space returns via the owner's bin on its next drain.
        w0.begin_volatile();
        let v2 = w0.alloc(24);
        let mut found = v2 == v;
        // The bin drain only fires on arena exhaustion; loop until the
        // recycled block resurfaces or the arena provides fresh space.
        for _ in 0..4096 {
            if found {
                break;
            }
            let n = w0.alloc(24);
            found = n == v;
        }
        w0.end_volatile();
        assert!(found || w0.pm().is_volatile(v2.addr()));
        for w in workers {
            owner.absorb_worker(w);
        }
        owner.absorb_worker(w0);
    }

    #[test]
    fn block_len_reads_class() {
        let mut h = heap();
        let a = h.alloc(100);
        assert_eq!(h.block_len(a), 128);
    }

    #[test]
    fn stats_track_live_and_cumulative() {
        let mut h = heap();
        let a = h.alloc(16);
        let b = h.alloc(16);
        assert_eq!(h.stats().live_bytes, 32);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(a);
        assert_eq!(h.stats().live_bytes, 16);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(b);
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(h.stats().hwm_live_bytes, 32);
    }

    #[test]
    fn refcounts_start_at_one() {
        let mut h = heap();
        let a = h.alloc(16);
        assert_eq!(h.rc_get(a), 1);
        h.rc_inc(a);
        assert_eq!(h.rc_get(a), 2);
        assert_eq!(h.rc_dec(a), 1);
        assert_eq!(h.rc_dec(a), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn rc_underflow_panics() {
        let mut h = heap();
        let a = h.alloc(16);
        h.rc_dec(a);
        h.rc_dec(a);
    }

    #[test]
    fn flush_block_covers_header_and_payload() {
        let mut h = heap();
        let a = h.alloc(128);
        h.write_bytes(a.addr(), &[7u8; 128]);
        h.flush_block(a);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0, "everything flushed");
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        let mut buf = [0u8; 128];
        img.peek_bytes(a.addr(), &mut buf);
        assert_eq!(buf, [7u8; 128]);
    }

    #[test]
    fn root_slots_default_null() {
        let mut h = heap();
        for i in 0..crate::layout::N_ROOTS {
            assert!(h.read_root(i).is_null());
        }
    }

    #[test]
    #[should_panic(expected = "corrupt block header")]
    fn stray_pointer_detected() {
        let mut h = heap();
        let _ = h.alloc(64);
        h.block_len(PmPtr::from_addr(HEAP_BASE + HEADER_BYTES + 8));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn pool_exhaustion_panics() {
        let pm = Pmem::new(PmemConfig {
            capacity: 1 << 16,
            ..PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        for _ in 0..1000 {
            let _ = h.alloc(4096);
        }
    }

    #[test]
    #[should_panic(expected = "recovery mode")]
    fn alloc_during_recovery_panics() {
        let h = heap();
        let pm = h.into_pm();
        let mut reopened = NvHeap::open(pm);
        let _ = reopened.alloc(16);
    }

    #[test]
    fn shards_allocate_from_disjoint_arenas() {
        let mut h = heap();
        let before = h.alloc(32); // pre-shard block
        h.configure_shards(4);
        assert_eq!(h.shard_count(), 4);
        assert_eq!(h.pm().shard_count(), 4, "pool lanes configured too");
        let mut ptrs = Vec::new();
        for s in 0..4 {
            h.set_active_shard(s);
            let a = h.alloc(64);
            let b = h.alloc(64);
            assert!(a.addr() > before.addr());
            ptrs.push((s, a, b));
        }
        // Arena disjointness: shard i's blocks all sit below shard i+1's.
        for w in ptrs.windows(2) {
            let (_, _, hi_of_lower) = w[0];
            let (_, lo_of_upper, _) = w[1];
            assert!(hi_of_lower.addr() < lo_of_upper.addr());
        }
    }

    #[test]
    fn shards_survive_crash_reopen_cycles() {
        // After a crash, most free space is in the recovered region
        // list, not above the bump pointer; configure_shards must carve
        // from the largest free span or reopening a nearly empty pool
        // would fail after a handful of cycles.
        let pm = Pmem::new(mod_pmem::PmemConfig {
            capacity: 1 << 22,
            ..mod_pmem::PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        for cycle in 0..10 {
            h.configure_shards(4);
            // One small live block, written by the *last* shard (the
            // worst case: its arena sits at the top of the span, so the
            // recovered bump lands near the pool's end).
            h.set_active_shard(3);
            let live = h.alloc(1024);
            h.write_u64(live.addr(), cycle);
            h.flush_block(live);
            let slot = h.root_slot_addr(0);
            h.write_u64(slot, live.addr());
            h.clwb(slot);
            h.sfence();
            let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
            h = NvHeap::open(img);
            let root = h.read_root(0);
            assert!(h.mark_block(root), "cycle {cycle}");
            assert_eq!(h.finish_recovery().live_blocks, 1);
            assert_eq!(h.read_u64(root.addr()), cycle);
        }
    }

    #[test]
    fn skewed_worker_steals_from_sibling_arenas() {
        // One worker allocating far beyond its own arena must borrow
        // bump space from sibling shards instead of dying of "pool
        // exhausted" while three arenas sit empty.
        let pm = Pmem::new(mod_pmem::PmemConfig {
            capacity: 1 << 20,
            ..mod_pmem::PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        h.configure_shards(4);
        h.set_active_shard(0);
        // ~256 KiB per arena; allocate ~700 KiB from shard 0 alone.
        let ptrs: Vec<PmPtr> = (0..170).map(|_| h.alloc(4096)).collect();
        let mut uniq: Vec<u64> = ptrs.iter().map(|p| p.addr()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ptrs.len(), "stolen blocks must not alias");
        // Stolen blocks free back to their owning (donor) shards and are
        // reusable.
        for p in &ptrs {
            h.free(*p);
        }
        let again = h.alloc(4096);
        assert!(
            uniq.binary_search(&again.addr()).is_ok(),
            "freed space reused"
        );
    }

    #[test]
    fn shard_frees_reuse_within_owning_shard() {
        let mut h = heap();
        h.configure_shards(2);
        h.set_active_shard(1);
        let a = h.alloc(100);
        // Freed from the *other* shard: still returns to shard 1's list
        // (ownership is by arena address).
        h.set_active_shard(0);
        h.free(a);
        h.set_active_shard(1);
        let b = h.alloc(100);
        assert_eq!(a, b, "shard 1 reuses its own freed block");
    }

    #[test]
    fn shard_stats_roll_up_into_global() {
        let mut h = heap();
        h.configure_shards(2);
        h.set_active_shard(0);
        let a = h.alloc(16);
        let _b = h.alloc(32);
        h.set_active_shard(1);
        let _c = h.alloc(64);
        h.free(a);
        let (s0, s1) = (h.shard_stats(0).clone(), h.shard_stats(1).clone());
        assert_eq!(s0.allocs + s1.allocs, h.stats().allocs);
        assert_eq!(s0.frees + s1.frees, h.stats().frees);
        assert_eq!(
            s0.cumulative_alloc_bytes + s1.cumulative_alloc_bytes,
            h.stats().cumulative_alloc_bytes
        );
        assert_eq!(s0.allocs, 2);
        assert_eq!(s1.allocs, 1);
        assert_eq!(s1.frees, 1, "free attributed to the freeing shard");
    }

    #[test]
    fn pre_shard_blocks_free_into_shared_lists() {
        let mut h = heap();
        let a = h.alloc(100);
        h.configure_shards(2);
        h.free(a);
        // A same-class allocation finds it via the shared fallback once
        // the shard arena would otherwise be used — force fallback by
        // checking the block is reused by *some* shard.
        h.set_active_shard(1);
        let b = h.alloc(100);
        // Shard 1 prefers its own arena, so the pre-shard block stays in
        // the shared list until arenas run dry; both behaviors keep the
        // block valid. Just assert allocation still works and addresses
        // never collide.
        assert_ne!(a, b);
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "already configured")]
    fn double_shard_configuration_rejected() {
        let mut h = heap();
        h.configure_shards(2);
        h.configure_shards(2);
    }

    #[test]
    fn split_workers_allocate_in_parallel_arenas() {
        let mut h = heap();
        let mut workers = h.split_workers(4);
        assert_eq!(workers.len(), 4);
        assert_eq!(h.split_workers_outstanding(), 4);
        // Genuinely parallel host-side allocation: each worker heap is
        // moved into its own thread, no lock anywhere.
        let handles: Vec<_> = workers
            .drain(..)
            .map(|mut w| {
                std::thread::spawn(move || {
                    let ptrs: Vec<u64> = (0..64).map(|_| w.alloc(48).addr()).collect();
                    (w, ptrs)
                })
            })
            .collect();
        let mut all = Vec::new();
        for t in handles {
            let (w, ptrs) = t.join().unwrap();
            assert!(w.is_worker());
            all.extend(ptrs);
            h.absorb_worker(w);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 256, "worker arenas never alias");
        assert_eq!(h.split_workers_outstanding(), 0);
        // Commit-side roll-up saw every alloc via absorb.
        assert_eq!(h.stats().allocs, 256);
        assert_eq!(h.stats().live_blocks, 256);
    }

    #[test]
    fn worker_rc_deltas_and_transfer() {
        let mut h = heap();
        let published = h.alloc(32); // foreign to every worker
        let mut workers = h.split_workers(2);
        let mut w0 = workers.remove(0);
        let fresh = w0.alloc(32);
        assert_eq!(w0.rc_get(fresh), 1, "fresh blocks tracked locally");
        w0.rc_inc(fresh);
        w0.rc_inc(published); // foreign: becomes a delta
        assert_eq!(w0.rc_get(published), 0, "foreign counts invisible locally");
        let fx = w0.take_staged_effects();
        assert!(!fx.is_empty());
        h.apply_staged_effects(fx);
        assert_eq!(h.rc_get(fresh), 2, "authority transferred");
        assert_eq!(h.rc_get(published), 2, "delta applied");
        // After handoff the fresh block is foreign to its own creator.
        w0.rc_inc(fresh);
        let fx2 = w0.take_staged_effects();
        h.apply_staged_effects(fx2);
        assert_eq!(h.rc_get(fresh), 3);
    }

    #[test]
    #[should_panic(expected = "foreign block")]
    fn worker_foreign_rc_dec_panics() {
        let mut h = heap();
        let published = h.alloc(32);
        let mut workers = h.split_workers(2);
        workers[0].rc_dec(published);
    }

    #[test]
    fn commit_side_frees_return_through_bins() {
        // Small pool: the worker arena exhausts quickly, forcing the
        // bin-drain fallback.
        let pm = Pmem::new(PmemConfig {
            capacity: 1 << 20,
            ..PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        let mut workers = h.split_workers(2);
        let mut w1 = workers.remove(1);
        let a = w1.alloc(100);
        h.apply_staged_effects(w1.take_staged_effects());
        // The commit stage reclaims the block (e.g. a superseded
        // version): it lands in shard 1's bin, not a global list.
        h.free(a);
        assert_eq!(h.rc_get(a), 0);
        // Exhaust the arena path far enough that the worker drains its
        // bin: alloc until the freed block comes back.
        let mut reused = false;
        for _ in 0..100_000 {
            if w1.alloc(100) == a {
                reused = true;
                break;
            }
        }
        assert!(reused, "bin drain must recycle commit-side frees");
    }

    #[test]
    fn worker_abort_fase_rolls_back_allocations() {
        let mut h = heap();
        let mut workers = h.split_workers(1);
        let mut w = workers.remove(0);
        let base = w.stats().clone();
        let a = w.alloc(64);
        let b = w.alloc(64);
        w.rc_inc(b);
        w.abort_fase();
        assert_eq!(w.rc_get(a), 0);
        assert_eq!(w.rc_get(b), 0);
        assert_eq!(w.stats().live_blocks, base.live_blocks, "alloc unwound");
        assert_eq!(
            w.stats().cumulative_alloc_bytes,
            base.cumulative_alloc_bytes
        );
        // The space is reusable.
        let c = w.alloc(64);
        let d = w.alloc(64);
        assert!([a, b].contains(&c) && [a, b].contains(&d));
        // And the next handoff carries no trace of the aborted FASE.
        let fx = w.take_staged_effects();
        h.apply_staged_effects(fx);
        assert_eq!(h.rc_get(a), 1);
    }

    #[test]
    fn worker_foreign_free_is_deferred() {
        let mut h = heap();
        let published = h.alloc(32);
        let frees_before = h.stats().frees;
        let mut workers = h.split_workers(1);
        let mut w = workers.remove(0);
        w.free(published);
        assert_eq!(w.stats().frees, 0, "worker did not free it");
        h.apply_staged_effects(w.take_staged_effects());
        assert_eq!(h.stats().frees, frees_before + 1, "commit stage did");
        assert_eq!(h.rc_get(published), 0);
    }

    #[test]
    #[should_panic(expected = "worker shard arena exhausted")]
    fn worker_arena_exhaustion_panics_loudly() {
        let pm = Pmem::new(PmemConfig {
            capacity: 1 << 20,
            ..PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        let mut workers = h.split_workers(4);
        let w = &mut workers[0];
        for _ in 0..100_000 {
            let _ = w.alloc(4096);
        }
    }

    #[test]
    fn large_alloc_beyond_classes() {
        let mut h = heap();
        let a = h.alloc(10_000);
        assert_eq!(h.block_len(a), 12288);
        h.free(a);
        let b = h.alloc(12_000);
        assert_eq!(a, b, "large free block should be reused via regions");
    }
}
