//! The persistent heap: allocation, deallocation, root slots and the
//! volatile reference-count table.

use crate::layout::{
    class_index, class_size, root_slot_offset, BLOCK_MAGIC, HEADER_BYTES, HEAP_BASE, MIN_BLOCK,
    POOL_MAGIC, SIZE_CLASSES,
};
use crate::recovery::MarkState;
use mod_pmem::{PmPtr, Pmem};
use std::collections::{BTreeMap, HashMap};

/// Allocation statistics, the data source of Table 3.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (payload class sizes, excl. headers).
    pub live_bytes: u64,
    /// Number of live blocks.
    pub live_blocks: u64,
    /// High-water mark of `live_bytes`.
    pub hwm_live_bytes: u64,
    /// Total payload bytes ever allocated (allocation traffic).
    pub cumulative_alloc_bytes: u64,
    /// Number of allocations performed.
    pub allocs: u64,
    /// Number of frees performed.
    pub frees: u64,
}

/// One allocation shard: an arena carved from the pool with its own bump
/// pointer, free lists and statistics, so each worker thread allocates
/// without contending on a shared bump pointer or mixing free lists.
#[derive(Debug)]
struct ShardAlloc {
    free_by_class: Vec<Vec<u64>>,
    /// Arena bounds: `[start, end)` within the pool.
    start: u64,
    end: u64,
    bump: u64,
    stats: AllocStats,
}

/// A persistent heap over a simulated PM pool: an `nvm_malloc` equivalent
/// with segregated free lists, 64 persistent root slots, and a volatile
/// reference-count table (paper §5.3 — counts are *not* stored durably;
/// they are rebuilt from reachability during recovery).
///
/// All heap metadata needed after a crash lives in PM (block headers);
/// everything else (free lists, refcounts, the bump pointer) is volatile
/// and reconstructed by recovery.
///
/// [`NvHeap::configure_shards`] switches the heap into sharded mode for
/// thread-per-shard front ends (see `mod-core`'s `SharedModHeap`).
#[derive(Debug)]
pub struct NvHeap {
    pm: Pmem,
    free_by_class: Vec<Vec<u64>>,
    /// Coalesced free space discovered by recovery: start → length.
    regions: BTreeMap<u64, u64>,
    bump: u64,
    rc: HashMap<u64, u32>,
    stats: AllocStats,
    /// Allocation shards (empty unless [`NvHeap::configure_shards`] ran).
    shards: Vec<ShardAlloc>,
    active_shard: usize,
    pub(crate) mark: Option<MarkState>,
}

impl NvHeap {
    /// Formats a fresh pool: writes the pool header, zeroes the root
    /// slots, and makes both durable.
    pub fn format(mut pm: Pmem) -> NvHeap {
        pm.trace_alloc(0, HEAP_BASE); // metadata region is "allocated"
        pm.write_u64(0, POOL_MAGIC);
        pm.write_u64(8, pm.capacity());
        for i in 0..crate::layout::N_ROOTS {
            pm.write_u64(root_slot_offset(i), 0);
        }
        pm.flush_range(0, HEAP_BASE);
        pm.sfence();
        NvHeap {
            pm,
            free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
            regions: BTreeMap::new(),
            bump: HEAP_BASE,
            rc: HashMap::new(),
            stats: AllocStats::default(),
            shards: Vec::new(),
            active_shard: 0,
            mark: Some(MarkState::default()),
        }
        .into_ready()
    }

    fn into_ready(mut self) -> NvHeap {
        self.mark = None;
        self
    }

    /// Opens an existing pool after a (simulated) restart or crash. The
    /// heap starts in *recovery mode*: callers must mark every reachable
    /// block via [`NvHeap::mark_block`] and then call
    /// [`NvHeap::finish_recovery`] before allocating.
    ///
    /// # Panics
    ///
    /// Panics if the pool header magic is invalid (not a formatted pool).
    pub fn open(mut pm: Pmem) -> NvHeap {
        let magic = pm.read_u64(0);
        assert_eq!(magic, POOL_MAGIC, "not a formatted MOD pool");
        NvHeap {
            pm,
            free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
            regions: BTreeMap::new(),
            bump: HEAP_BASE,
            rc: HashMap::new(),
            stats: AllocStats::default(),
            shards: Vec::new(),
            active_shard: 0,
            mark: Some(MarkState::default()),
        }
    }

    /// Whether the heap is still in recovery mode.
    pub fn in_recovery(&self) -> bool {
        self.mark.is_some()
    }

    fn assert_ready(&self) {
        assert!(
            self.mark.is_none(),
            "heap is in recovery mode; finish_recovery() first"
        );
    }

    // ------------------------------------------------------------------
    // Allocation shards
    // ------------------------------------------------------------------

    /// Splits the largest contiguous free span of the pool into `n`
    /// equal arenas, one per shard: each gets its own bump pointer, free
    /// lists and [`AllocStats`]. Also configures `n` shard lanes on the
    /// underlying [`Pmem`]. Shard 0 becomes active; blocks outside the
    /// carved span stay valid (their frees land in the shared free
    /// lists, a fallback for every shard).
    ///
    /// The span is the unallocated tail *or* a coalesced free region
    /// left by recovery, whichever is larger — after a crash/reopen the
    /// bump pointer sits above the highest live block and most free
    /// space lives in the region list, so carving only the tail would
    /// shrink the arenas on every reopen cycle until sharding failed.
    ///
    /// Per-shard statistics attribute traffic to the shard that was
    /// active when it happened; the global [`NvHeap::stats`] roll-up
    /// (Table 3) stays exact regardless of which shard frees a block.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, in recovery mode, if shards are already
    /// configured, or if the largest free span is too small to give
    /// every shard a useful arena.
    pub fn configure_shards(&mut self, n: usize) {
        self.assert_ready();
        assert!(n > 0, "need at least one shard");
        assert!(self.shards.is_empty(), "shards already configured");
        let tail = (self.bump, self.pm.capacity() - self.bump);
        let (base, len) = self
            .regions
            .iter()
            .map(|(&s, &l)| (s, l))
            .chain(std::iter::once(tail))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        let per = (len / n as u64) & !15;
        assert!(
            per >= 64 * MIN_BLOCK,
            "pool too fragmented to shard: largest free span gives {per} bytes per shard"
        );
        if base == self.bump {
            // The span is the tail; the shards own it now.
            self.bump = self.pm.capacity();
        } else {
            self.regions.remove(&base);
        }
        self.shards = (0..n as u64)
            .map(|i| {
                let start = base + i * per;
                ShardAlloc {
                    free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
                    start,
                    // The last shard absorbs the span's alignment
                    // remainder.
                    end: if i == n as u64 - 1 {
                        base + len
                    } else {
                        start + per
                    },
                    bump: start,
                    stats: AllocStats::default(),
                }
            })
            .collect();
        self.active_shard = 0;
        self.pm.configure_shards(n);
    }

    /// Number of configured allocation shards (0 when unsharded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes subsequent allocations (and stats/time attribution, via the
    /// pool's shard lanes) to shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn set_active_shard(&mut self, s: usize) {
        assert!(
            s < self.shards.len().max(1),
            "shard {s} out of range ({} configured)",
            self.shards.len()
        );
        self.active_shard = s;
        if self.pm.shard_count() > 0 {
            self.pm.set_active_shard(s);
        }
    }

    /// The shard currently receiving allocations (0 when unsharded).
    pub fn active_shard(&self) -> usize {
        self.active_shard
    }

    /// Allocation statistics attributed to shard `s`. Alloc/free counts
    /// and cumulative bytes sum exactly to the global [`NvHeap::stats`]
    /// for traffic since sharding; `live_*` is approximate per shard when
    /// blocks are freed by a different shard than allocated them (the
    /// global roll-up stays exact).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    pub fn shard_stats(&self, s: usize) -> &AllocStats {
        &self.shards[s].stats
    }

    /// The shard whose arena contains `addr`, if any.
    fn shard_of_addr(&self, addr: u64) -> Option<usize> {
        if self.shards.is_empty() || addr < self.shards[0].start {
            return None;
        }
        self.shards
            .iter()
            .position(|s| addr >= s.start && addr < s.end)
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` payload bytes, returning the payload pointer. The
    /// block header is written (but not flushed — a subsequent
    /// [`NvHeap::flush_block`] covers it). The new block starts with a
    /// volatile reference count of 1.
    ///
    /// # Panics
    ///
    /// Panics on pool exhaustion, zero-size requests, or in recovery mode.
    pub fn alloc(&mut self, len: u64) -> PmPtr {
        self.assert_ready();
        let class = class_size(len);
        let hdr = self.take_block(class);
        let payload = hdr + HEADER_BYTES;
        self.pm.trace_alloc(hdr, HEADER_BYTES + class);
        // Header: [class size][magic ^ class] — integrity-checkable at
        // recovery. 15 ns models nvm_malloc's bin bookkeeping.
        self.pm.charge_ns(15.0);
        self.pm.write_u64(hdr, class);
        self.pm.write_u64(hdr + 8, BLOCK_MAGIC ^ class);
        self.rc.insert(payload, 1);
        self.stats.allocs += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += class;
        self.stats.cumulative_alloc_bytes += class;
        self.stats.hwm_live_bytes = self.stats.hwm_live_bytes.max(self.stats.live_bytes);
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            let s = &mut shard.stats;
            s.allocs += 1;
            s.live_blocks += 1;
            s.live_bytes += class;
            s.cumulative_alloc_bytes += class;
            s.hwm_live_bytes = s.hwm_live_bytes.max(s.live_bytes);
        }
        PmPtr::from_addr(payload)
    }

    fn take_block(&mut self, class: u64) -> u64 {
        let need = HEADER_BYTES + class;
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            if let Some(idx) = class_index(class) {
                if let Some(hdr) = shard.free_by_class[idx].pop() {
                    return hdr;
                }
            }
            if shard.bump + need <= shard.end {
                let hdr = shard.bump;
                shard.bump += need;
                return hdr;
            }
            // Arena exhausted: fall through to the shared free lists and
            // pre-sharding regions before giving up.
        }
        if let Some(idx) = class_index(class) {
            if let Some(hdr) = self.free_by_class[idx].pop() {
                return hdr;
            }
        }
        // First-fit from recovered regions.
        if let Some((&start, &rlen)) = self.regions.iter().find(|&(_, &rlen)| rlen >= need) {
            self.regions.remove(&start);
            let rest = rlen - need;
            if rest >= MIN_BLOCK {
                self.regions.insert(start + need, rest);
            }
            return start;
        }
        // Steal bump space from the sibling shard with the most arena
        // left: a skewed workload must not die of "pool exhausted" while
        // other arenas sit empty. (Ownership follows the address, so the
        // stolen block's frees return to the donor shard's lists.)
        if let Some(i) = (0..self.shards.len())
            .filter(|&i| self.shards[i].end - self.shards[i].bump >= need)
            .max_by_key(|&i| self.shards[i].end - self.shards[i].bump)
        {
            let hdr = self.shards[i].bump;
            self.shards[i].bump += need;
            return hdr;
        }
        // Bump allocation.
        let hdr = self.bump;
        assert!(
            hdr + need <= self.pm.capacity(),
            "persistent pool exhausted: bump {hdr:#x} + {need} > capacity {:#x}",
            self.pm.capacity()
        );
        self.bump += need;
        hdr
    }

    /// Frees the block at `ptr` (payload pointer), returning its payload
    /// to the free lists. Removes any refcount entry.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is null or its header fails the integrity check.
    pub fn free(&mut self, ptr: PmPtr) {
        self.assert_ready();
        assert!(!ptr.is_null(), "freeing null PmPtr");
        let class = self.block_len(ptr);
        let hdr = ptr.addr() - HEADER_BYTES;
        self.pm.trace_free(hdr, HEADER_BYTES + class);
        self.pm.charge_ns(10.0);
        self.rc.remove(&ptr.addr());
        // Blocks return to the free lists of the shard whose arena owns
        // them (locality: that shard's allocations reuse them); blocks
        // predating shard configuration go back to the shared lists.
        let owner = self.shard_of_addr(hdr);
        let list = match (owner, class_index(class)) {
            (Some(s), Some(idx)) => Some(&mut self.shards[s].free_by_class[idx]),
            (None, Some(idx)) => Some(&mut self.free_by_class[idx]),
            (_, None) => None,
        };
        match list {
            Some(l) => l.push(hdr),
            None => {
                self.regions.insert(hdr, HEADER_BYTES + class);
            }
        }
        self.stats.frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= class;
        if let Some(shard) = self.shards.get_mut(self.active_shard) {
            let s = &mut shard.stats;
            s.frees += 1;
            // Cross-shard frees can undercut a shard's own live figures;
            // saturate instead of underflowing (global stats stay exact).
            s.live_blocks = s.live_blocks.saturating_sub(1);
            s.live_bytes = s.live_bytes.saturating_sub(class);
        }
    }

    /// Payload class size of the block at `ptr`, read from its header.
    ///
    /// # Panics
    ///
    /// Panics if the header magic does not match (corruption or a stray
    /// pointer).
    pub fn block_len(&mut self, ptr: PmPtr) -> u64 {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        let magic = self.pm.read_u64(hdr + 8);
        assert_eq!(
            magic,
            BLOCK_MAGIC ^ class,
            "corrupt block header at {hdr:#x}"
        );
        class
    }

    /// Flushes the whole block (header + payload) with unordered `clwb`s.
    pub fn flush_block(&mut self, ptr: PmPtr) {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        self.pm.flush_range(hdr, HEADER_BYTES + class);
    }

    // ------------------------------------------------------------------
    // Volatile reference counts (§5.3)
    // ------------------------------------------------------------------

    /// Increments the volatile refcount of the block at `ptr`.
    pub fn rc_inc(&mut self, ptr: PmPtr) {
        *self.rc.entry(ptr.addr()).or_insert(0) += 1;
    }

    /// Decrements the volatile refcount; returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero/absent (double release).
    pub fn rc_dec(&mut self, ptr: PmPtr) -> u32 {
        let c = self
            .rc
            .get_mut(&ptr.addr())
            .unwrap_or_else(|| panic!("rc_dec on untracked block {ptr}"));
        assert!(*c > 0, "refcount underflow at {ptr}");
        *c -= 1;
        *c
    }

    /// Current refcount of a block (0 if untracked).
    pub fn rc_get(&self, ptr: PmPtr) -> u32 {
        self.rc.get(&ptr.addr()).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Root slots
    // ------------------------------------------------------------------

    /// PM address of root slot `i` (for commit-time pointer writes).
    pub fn root_slot_addr(&self, i: usize) -> u64 {
        root_slot_offset(i)
    }

    /// Reads root slot `i`.
    pub fn read_root(&mut self, i: usize) -> PmPtr {
        let a = root_slot_offset(i);
        PmPtr::from_addr(self.pm.read_u64(a))
    }

    /// Reads root slot `i` without touching the cache/time model (see
    /// [`NvHeap::peek_u64`]).
    pub fn peek_root(&self, i: usize) -> PmPtr {
        PmPtr::from_addr(self.pm.peek_u64(root_slot_offset(i)))
    }

    // ------------------------------------------------------------------
    // Pass-throughs to the PM device
    // ------------------------------------------------------------------

    /// The underlying simulated PM pool.
    pub fn pm(&self) -> &Pmem {
        &self.pm
    }

    /// Mutable access to the underlying simulated PM pool.
    pub fn pm_mut(&mut self) -> &mut Pmem {
        &mut self.pm
    }

    /// Consumes the heap, returning the pool (e.g. to build crash images).
    pub fn into_pm(self) -> Pmem {
        self.pm
    }

    /// Reads a `u64` through the cache model.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        self.pm.read_u64(addr)
    }

    /// Writes a `u64` through the cache model.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.pm.write_u64(addr, v)
    }

    /// Reads a `u32` through the cache model.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        self.pm.read_u32(addr)
    }

    /// Writes a `u32` through the cache model.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.pm.write_u32(addr, v)
    }

    /// Reads bytes through the cache model.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.pm.read_bytes(addr, buf)
    }

    /// Writes bytes through the cache model.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        self.pm.write_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector through the cache model.
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        self.pm.read_vec(addr, len)
    }

    /// Reads a `u64` *without* charging the cache/time model.
    ///
    /// Peek reads back the read-only access path of the typed API
    /// (`&ModHeap` lookups): they need no exclusive access and no
    /// instrumentation, exactly like a load from a mapped PM pool.
    pub fn peek_u64(&self, addr: u64) -> u64 {
        self.pm.peek_u64(addr)
    }

    /// Reads a `u32` without charging the cache/time model.
    pub fn peek_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.pm.peek_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Reads bytes without charging the cache/time model.
    pub fn peek_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.pm.peek_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector without charging the
    /// cache/time model.
    pub fn peek_vec(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        self.pm.peek_bytes(addr, &mut buf);
        buf
    }

    /// Issues a `clwb` for the line containing `addr`.
    pub fn clwb(&mut self, addr: u64) {
        self.pm.clwb(addr)
    }

    /// Flushes every line covering the range.
    pub fn flush_range(&mut self, addr: u64, len: u64) {
        self.pm.flush_range(addr, len)
    }

    /// Executes the ordering point.
    pub fn sfence(&mut self) {
        self.pm.sfence()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut AllocStats {
        &mut self.stats
    }

    pub(crate) fn rebuild_volatile(
        &mut self,
        free_by_class: Vec<Vec<u64>>,
        regions: BTreeMap<u64, u64>,
        bump: u64,
        rc: HashMap<u64, u32>,
    ) {
        self.free_by_class = free_by_class;
        self.regions = regions;
        self.bump = bump;
        self.rc = rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::PmemConfig;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn format_writes_magic_durably() {
        let h = heap();
        assert_eq!(h.pm().peek_u64(0), POOL_MAGIC);
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0), POOL_MAGIC);
    }

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let mut h = heap();
        let a = h.alloc(24);
        let b = h.alloc(24);
        assert_ne!(a, b);
        assert_eq!(a.addr() % 16, 0);
        assert_eq!(b.addr() % 16, 0);
        assert!(a.addr() >= HEAP_BASE + HEADER_BYTES);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut h = heap();
        let a = h.alloc(100);
        h.free(a);
        let b = h.alloc(100);
        assert_eq!(a, b, "same class should reuse the freed block");
    }

    #[test]
    fn block_len_reads_class() {
        let mut h = heap();
        let a = h.alloc(100);
        assert_eq!(h.block_len(a), 128);
    }

    #[test]
    fn stats_track_live_and_cumulative() {
        let mut h = heap();
        let a = h.alloc(16);
        let b = h.alloc(16);
        assert_eq!(h.stats().live_bytes, 32);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(a);
        assert_eq!(h.stats().live_bytes, 16);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(b);
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(h.stats().hwm_live_bytes, 32);
    }

    #[test]
    fn refcounts_start_at_one() {
        let mut h = heap();
        let a = h.alloc(16);
        assert_eq!(h.rc_get(a), 1);
        h.rc_inc(a);
        assert_eq!(h.rc_get(a), 2);
        assert_eq!(h.rc_dec(a), 1);
        assert_eq!(h.rc_dec(a), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn rc_underflow_panics() {
        let mut h = heap();
        let a = h.alloc(16);
        h.rc_dec(a);
        h.rc_dec(a);
    }

    #[test]
    fn flush_block_covers_header_and_payload() {
        let mut h = heap();
        let a = h.alloc(128);
        h.write_bytes(a.addr(), &[7u8; 128]);
        h.flush_block(a);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0, "everything flushed");
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        let mut buf = [0u8; 128];
        img.peek_bytes(a.addr(), &mut buf);
        assert_eq!(buf, [7u8; 128]);
    }

    #[test]
    fn root_slots_default_null() {
        let mut h = heap();
        for i in 0..crate::layout::N_ROOTS {
            assert!(h.read_root(i).is_null());
        }
    }

    #[test]
    #[should_panic(expected = "corrupt block header")]
    fn stray_pointer_detected() {
        let mut h = heap();
        let _ = h.alloc(64);
        h.block_len(PmPtr::from_addr(HEAP_BASE + HEADER_BYTES + 8));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn pool_exhaustion_panics() {
        let pm = Pmem::new(PmemConfig {
            capacity: 1 << 16,
            ..PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        for _ in 0..1000 {
            let _ = h.alloc(4096);
        }
    }

    #[test]
    #[should_panic(expected = "recovery mode")]
    fn alloc_during_recovery_panics() {
        let h = heap();
        let pm = h.into_pm();
        let mut reopened = NvHeap::open(pm);
        let _ = reopened.alloc(16);
    }

    #[test]
    fn shards_allocate_from_disjoint_arenas() {
        let mut h = heap();
        let before = h.alloc(32); // pre-shard block
        h.configure_shards(4);
        assert_eq!(h.shard_count(), 4);
        assert_eq!(h.pm().shard_count(), 4, "pool lanes configured too");
        let mut ptrs = Vec::new();
        for s in 0..4 {
            h.set_active_shard(s);
            let a = h.alloc(64);
            let b = h.alloc(64);
            assert!(a.addr() > before.addr());
            ptrs.push((s, a, b));
        }
        // Arena disjointness: shard i's blocks all sit below shard i+1's.
        for w in ptrs.windows(2) {
            let (_, _, hi_of_lower) = w[0];
            let (_, lo_of_upper, _) = w[1];
            assert!(hi_of_lower.addr() < lo_of_upper.addr());
        }
    }

    #[test]
    fn shards_survive_crash_reopen_cycles() {
        // After a crash, most free space is in the recovered region
        // list, not above the bump pointer; configure_shards must carve
        // from the largest free span or reopening a nearly empty pool
        // would fail after a handful of cycles.
        let pm = Pmem::new(mod_pmem::PmemConfig {
            capacity: 1 << 22,
            ..mod_pmem::PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        for cycle in 0..10 {
            h.configure_shards(4);
            // One small live block, written by the *last* shard (the
            // worst case: its arena sits at the top of the span, so the
            // recovered bump lands near the pool's end).
            h.set_active_shard(3);
            let live = h.alloc(1024);
            h.write_u64(live.addr(), cycle);
            h.flush_block(live);
            let slot = h.root_slot_addr(0);
            h.write_u64(slot, live.addr());
            h.clwb(slot);
            h.sfence();
            let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
            h = NvHeap::open(img);
            let root = h.read_root(0);
            assert!(h.mark_block(root), "cycle {cycle}");
            assert_eq!(h.finish_recovery().live_blocks, 1);
            assert_eq!(h.read_u64(root.addr()), cycle);
        }
    }

    #[test]
    fn skewed_worker_steals_from_sibling_arenas() {
        // One worker allocating far beyond its own arena must borrow
        // bump space from sibling shards instead of dying of "pool
        // exhausted" while three arenas sit empty.
        let pm = Pmem::new(mod_pmem::PmemConfig {
            capacity: 1 << 20,
            ..mod_pmem::PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        h.configure_shards(4);
        h.set_active_shard(0);
        // ~256 KiB per arena; allocate ~700 KiB from shard 0 alone.
        let ptrs: Vec<PmPtr> = (0..170).map(|_| h.alloc(4096)).collect();
        let mut uniq: Vec<u64> = ptrs.iter().map(|p| p.addr()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ptrs.len(), "stolen blocks must not alias");
        // Stolen blocks free back to their owning (donor) shards and are
        // reusable.
        for p in &ptrs {
            h.free(*p);
        }
        let again = h.alloc(4096);
        assert!(
            uniq.binary_search(&again.addr()).is_ok(),
            "freed space reused"
        );
    }

    #[test]
    fn shard_frees_reuse_within_owning_shard() {
        let mut h = heap();
        h.configure_shards(2);
        h.set_active_shard(1);
        let a = h.alloc(100);
        // Freed from the *other* shard: still returns to shard 1's list
        // (ownership is by arena address).
        h.set_active_shard(0);
        h.free(a);
        h.set_active_shard(1);
        let b = h.alloc(100);
        assert_eq!(a, b, "shard 1 reuses its own freed block");
    }

    #[test]
    fn shard_stats_roll_up_into_global() {
        let mut h = heap();
        h.configure_shards(2);
        h.set_active_shard(0);
        let a = h.alloc(16);
        let _b = h.alloc(32);
        h.set_active_shard(1);
        let _c = h.alloc(64);
        h.free(a);
        let (s0, s1) = (h.shard_stats(0).clone(), h.shard_stats(1).clone());
        assert_eq!(s0.allocs + s1.allocs, h.stats().allocs);
        assert_eq!(s0.frees + s1.frees, h.stats().frees);
        assert_eq!(
            s0.cumulative_alloc_bytes + s1.cumulative_alloc_bytes,
            h.stats().cumulative_alloc_bytes
        );
        assert_eq!(s0.allocs, 2);
        assert_eq!(s1.allocs, 1);
        assert_eq!(s1.frees, 1, "free attributed to the freeing shard");
    }

    #[test]
    fn pre_shard_blocks_free_into_shared_lists() {
        let mut h = heap();
        let a = h.alloc(100);
        h.configure_shards(2);
        h.free(a);
        // A same-class allocation finds it via the shared fallback once
        // the shard arena would otherwise be used — force fallback by
        // checking the block is reused by *some* shard.
        h.set_active_shard(1);
        let b = h.alloc(100);
        // Shard 1 prefers its own arena, so the pre-shard block stays in
        // the shared list until arenas run dry; both behaviors keep the
        // block valid. Just assert allocation still works and addresses
        // never collide.
        assert_ne!(a, b);
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "already configured")]
    fn double_shard_configuration_rejected() {
        let mut h = heap();
        h.configure_shards(2);
        h.configure_shards(2);
    }

    #[test]
    fn large_alloc_beyond_classes() {
        let mut h = heap();
        let a = h.alloc(10_000);
        assert_eq!(h.block_len(a), 12288);
        h.free(a);
        let b = h.alloc(12_000);
        assert_eq!(a, b, "large free block should be reused via regions");
    }
}
