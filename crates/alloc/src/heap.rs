//! The persistent heap: allocation, deallocation, root slots and the
//! volatile reference-count table.

use crate::layout::{
    class_index, class_size, root_slot_offset, BLOCK_MAGIC, HEADER_BYTES, HEAP_BASE, MIN_BLOCK,
    POOL_MAGIC, SIZE_CLASSES,
};
use crate::recovery::MarkState;
use mod_pmem::{PmPtr, Pmem};
use std::collections::{BTreeMap, HashMap};

/// Allocation statistics, the data source of Table 3.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (payload class sizes, excl. headers).
    pub live_bytes: u64,
    /// Number of live blocks.
    pub live_blocks: u64,
    /// High-water mark of `live_bytes`.
    pub hwm_live_bytes: u64,
    /// Total payload bytes ever allocated (allocation traffic).
    pub cumulative_alloc_bytes: u64,
    /// Number of allocations performed.
    pub allocs: u64,
    /// Number of frees performed.
    pub frees: u64,
}

/// A persistent heap over a simulated PM pool: an `nvm_malloc` equivalent
/// with segregated free lists, 64 persistent root slots, and a volatile
/// reference-count table (paper §5.3 — counts are *not* stored durably;
/// they are rebuilt from reachability during recovery).
///
/// All heap metadata needed after a crash lives in PM (block headers);
/// everything else (free lists, refcounts, the bump pointer) is volatile
/// and reconstructed by recovery.
#[derive(Debug)]
pub struct NvHeap {
    pm: Pmem,
    free_by_class: Vec<Vec<u64>>,
    /// Coalesced free space discovered by recovery: start → length.
    regions: BTreeMap<u64, u64>,
    bump: u64,
    rc: HashMap<u64, u32>,
    stats: AllocStats,
    pub(crate) mark: Option<MarkState>,
}

impl NvHeap {
    /// Formats a fresh pool: writes the pool header, zeroes the root
    /// slots, and makes both durable.
    pub fn format(mut pm: Pmem) -> NvHeap {
        pm.trace_alloc(0, HEAP_BASE); // metadata region is "allocated"
        pm.write_u64(0, POOL_MAGIC);
        pm.write_u64(8, pm.capacity());
        for i in 0..crate::layout::N_ROOTS {
            pm.write_u64(root_slot_offset(i), 0);
        }
        pm.flush_range(0, HEAP_BASE);
        pm.sfence();
        NvHeap {
            pm,
            free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
            regions: BTreeMap::new(),
            bump: HEAP_BASE,
            rc: HashMap::new(),
            stats: AllocStats::default(),
            mark: Some(MarkState::default()),
        }
        .into_ready()
    }

    fn into_ready(mut self) -> NvHeap {
        self.mark = None;
        self
    }

    /// Opens an existing pool after a (simulated) restart or crash. The
    /// heap starts in *recovery mode*: callers must mark every reachable
    /// block via [`NvHeap::mark_block`] and then call
    /// [`NvHeap::finish_recovery`] before allocating.
    ///
    /// # Panics
    ///
    /// Panics if the pool header magic is invalid (not a formatted pool).
    pub fn open(mut pm: Pmem) -> NvHeap {
        let magic = pm.read_u64(0);
        assert_eq!(magic, POOL_MAGIC, "not a formatted MOD pool");
        NvHeap {
            pm,
            free_by_class: vec![Vec::new(); SIZE_CLASSES.len()],
            regions: BTreeMap::new(),
            bump: HEAP_BASE,
            rc: HashMap::new(),
            stats: AllocStats::default(),
            mark: Some(MarkState::default()),
        }
    }

    /// Whether the heap is still in recovery mode.
    pub fn in_recovery(&self) -> bool {
        self.mark.is_some()
    }

    fn assert_ready(&self) {
        assert!(
            self.mark.is_none(),
            "heap is in recovery mode; finish_recovery() first"
        );
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` payload bytes, returning the payload pointer. The
    /// block header is written (but not flushed — a subsequent
    /// [`NvHeap::flush_block`] covers it). The new block starts with a
    /// volatile reference count of 1.
    ///
    /// # Panics
    ///
    /// Panics on pool exhaustion, zero-size requests, or in recovery mode.
    pub fn alloc(&mut self, len: u64) -> PmPtr {
        self.assert_ready();
        let class = class_size(len);
        let hdr = self.take_block(class);
        let payload = hdr + HEADER_BYTES;
        self.pm.trace_alloc(hdr, HEADER_BYTES + class);
        // Header: [class size][magic ^ class] — integrity-checkable at
        // recovery. 15 ns models nvm_malloc's bin bookkeeping.
        self.pm.charge_ns(15.0);
        self.pm.write_u64(hdr, class);
        self.pm.write_u64(hdr + 8, BLOCK_MAGIC ^ class);
        self.rc.insert(payload, 1);
        self.stats.allocs += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += class;
        self.stats.cumulative_alloc_bytes += class;
        self.stats.hwm_live_bytes = self.stats.hwm_live_bytes.max(self.stats.live_bytes);
        PmPtr::from_addr(payload)
    }

    fn take_block(&mut self, class: u64) -> u64 {
        if let Some(idx) = class_index(class) {
            if let Some(hdr) = self.free_by_class[idx].pop() {
                return hdr;
            }
        }
        let need = HEADER_BYTES + class;
        // First-fit from recovered regions.
        if let Some((&start, &rlen)) = self.regions.iter().find(|&(_, &rlen)| rlen >= need) {
            self.regions.remove(&start);
            let rest = rlen - need;
            if rest >= MIN_BLOCK {
                self.regions.insert(start + need, rest);
            }
            return start;
        }
        // Bump allocation.
        let hdr = self.bump;
        assert!(
            hdr + need <= self.pm.capacity(),
            "persistent pool exhausted: bump {hdr:#x} + {need} > capacity {:#x}",
            self.pm.capacity()
        );
        self.bump += need;
        hdr
    }

    /// Frees the block at `ptr` (payload pointer), returning its payload
    /// to the free lists. Removes any refcount entry.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is null or its header fails the integrity check.
    pub fn free(&mut self, ptr: PmPtr) {
        self.assert_ready();
        assert!(!ptr.is_null(), "freeing null PmPtr");
        let class = self.block_len(ptr);
        let hdr = ptr.addr() - HEADER_BYTES;
        self.pm.trace_free(hdr, HEADER_BYTES + class);
        self.pm.charge_ns(10.0);
        self.rc.remove(&ptr.addr());
        if let Some(idx) = class_index(class) {
            self.free_by_class[idx].push(hdr);
        } else {
            self.regions.insert(hdr, HEADER_BYTES + class);
        }
        self.stats.frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= class;
    }

    /// Payload class size of the block at `ptr`, read from its header.
    ///
    /// # Panics
    ///
    /// Panics if the header magic does not match (corruption or a stray
    /// pointer).
    pub fn block_len(&mut self, ptr: PmPtr) -> u64 {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        let magic = self.pm.read_u64(hdr + 8);
        assert_eq!(
            magic,
            BLOCK_MAGIC ^ class,
            "corrupt block header at {hdr:#x}"
        );
        class
    }

    /// Flushes the whole block (header + payload) with unordered `clwb`s.
    pub fn flush_block(&mut self, ptr: PmPtr) {
        let hdr = ptr.addr() - HEADER_BYTES;
        let class = self.pm.read_u64(hdr);
        self.pm.flush_range(hdr, HEADER_BYTES + class);
    }

    // ------------------------------------------------------------------
    // Volatile reference counts (§5.3)
    // ------------------------------------------------------------------

    /// Increments the volatile refcount of the block at `ptr`.
    pub fn rc_inc(&mut self, ptr: PmPtr) {
        *self.rc.entry(ptr.addr()).or_insert(0) += 1;
    }

    /// Decrements the volatile refcount; returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero/absent (double release).
    pub fn rc_dec(&mut self, ptr: PmPtr) -> u32 {
        let c = self
            .rc
            .get_mut(&ptr.addr())
            .unwrap_or_else(|| panic!("rc_dec on untracked block {ptr}"));
        assert!(*c > 0, "refcount underflow at {ptr}");
        *c -= 1;
        *c
    }

    /// Current refcount of a block (0 if untracked).
    pub fn rc_get(&self, ptr: PmPtr) -> u32 {
        self.rc.get(&ptr.addr()).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Root slots
    // ------------------------------------------------------------------

    /// PM address of root slot `i` (for commit-time pointer writes).
    pub fn root_slot_addr(&self, i: usize) -> u64 {
        root_slot_offset(i)
    }

    /// Reads root slot `i`.
    pub fn read_root(&mut self, i: usize) -> PmPtr {
        let a = root_slot_offset(i);
        PmPtr::from_addr(self.pm.read_u64(a))
    }

    /// Reads root slot `i` without touching the cache/time model (see
    /// [`NvHeap::peek_u64`]).
    pub fn peek_root(&self, i: usize) -> PmPtr {
        PmPtr::from_addr(self.pm.peek_u64(root_slot_offset(i)))
    }

    // ------------------------------------------------------------------
    // Pass-throughs to the PM device
    // ------------------------------------------------------------------

    /// The underlying simulated PM pool.
    pub fn pm(&self) -> &Pmem {
        &self.pm
    }

    /// Mutable access to the underlying simulated PM pool.
    pub fn pm_mut(&mut self) -> &mut Pmem {
        &mut self.pm
    }

    /// Consumes the heap, returning the pool (e.g. to build crash images).
    pub fn into_pm(self) -> Pmem {
        self.pm
    }

    /// Reads a `u64` through the cache model.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        self.pm.read_u64(addr)
    }

    /// Writes a `u64` through the cache model.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.pm.write_u64(addr, v)
    }

    /// Reads a `u32` through the cache model.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        self.pm.read_u32(addr)
    }

    /// Writes a `u32` through the cache model.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.pm.write_u32(addr, v)
    }

    /// Reads bytes through the cache model.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.pm.read_bytes(addr, buf)
    }

    /// Writes bytes through the cache model.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        self.pm.write_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector through the cache model.
    pub fn read_vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        self.pm.read_vec(addr, len)
    }

    /// Reads a `u64` *without* charging the cache/time model.
    ///
    /// Peek reads back the read-only access path of the typed API
    /// (`&ModHeap` lookups): they need no exclusive access and no
    /// instrumentation, exactly like a load from a mapped PM pool.
    pub fn peek_u64(&self, addr: u64) -> u64 {
        self.pm.peek_u64(addr)
    }

    /// Reads a `u32` without charging the cache/time model.
    pub fn peek_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.pm.peek_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Reads bytes without charging the cache/time model.
    pub fn peek_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.pm.peek_bytes(addr, buf)
    }

    /// Reads `len` bytes into a fresh vector without charging the
    /// cache/time model.
    pub fn peek_vec(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        self.pm.peek_bytes(addr, &mut buf);
        buf
    }

    /// Issues a `clwb` for the line containing `addr`.
    pub fn clwb(&mut self, addr: u64) {
        self.pm.clwb(addr)
    }

    /// Flushes every line covering the range.
    pub fn flush_range(&mut self, addr: u64, len: u64) {
        self.pm.flush_range(addr, len)
    }

    /// Executes the ordering point.
    pub fn sfence(&mut self) {
        self.pm.sfence()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut AllocStats {
        &mut self.stats
    }

    pub(crate) fn rebuild_volatile(
        &mut self,
        free_by_class: Vec<Vec<u64>>,
        regions: BTreeMap<u64, u64>,
        bump: u64,
        rc: HashMap<u64, u32>,
    ) {
        self.free_by_class = free_by_class;
        self.regions = regions;
        self.bump = bump;
        self.rc = rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::PmemConfig;

    fn heap() -> NvHeap {
        NvHeap::format(Pmem::new(PmemConfig::testing()))
    }

    #[test]
    fn format_writes_magic_durably() {
        let h = heap();
        assert_eq!(h.pm().peek_u64(0), POOL_MAGIC);
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        assert_eq!(img.peek_u64(0), POOL_MAGIC);
    }

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let mut h = heap();
        let a = h.alloc(24);
        let b = h.alloc(24);
        assert_ne!(a, b);
        assert_eq!(a.addr() % 16, 0);
        assert_eq!(b.addr() % 16, 0);
        assert!(a.addr() >= HEAP_BASE + HEADER_BYTES);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut h = heap();
        let a = h.alloc(100);
        h.free(a);
        let b = h.alloc(100);
        assert_eq!(a, b, "same class should reuse the freed block");
    }

    #[test]
    fn block_len_reads_class() {
        let mut h = heap();
        let a = h.alloc(100);
        assert_eq!(h.block_len(a), 128);
    }

    #[test]
    fn stats_track_live_and_cumulative() {
        let mut h = heap();
        let a = h.alloc(16);
        let b = h.alloc(16);
        assert_eq!(h.stats().live_bytes, 32);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(a);
        assert_eq!(h.stats().live_bytes, 16);
        assert_eq!(h.stats().cumulative_alloc_bytes, 32);
        h.free(b);
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(h.stats().hwm_live_bytes, 32);
    }

    #[test]
    fn refcounts_start_at_one() {
        let mut h = heap();
        let a = h.alloc(16);
        assert_eq!(h.rc_get(a), 1);
        h.rc_inc(a);
        assert_eq!(h.rc_get(a), 2);
        assert_eq!(h.rc_dec(a), 1);
        assert_eq!(h.rc_dec(a), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn rc_underflow_panics() {
        let mut h = heap();
        let a = h.alloc(16);
        h.rc_dec(a);
        h.rc_dec(a);
    }

    #[test]
    fn flush_block_covers_header_and_payload() {
        let mut h = heap();
        let a = h.alloc(128);
        h.write_bytes(a.addr(), &[7u8; 128]);
        h.flush_block(a);
        h.sfence();
        assert_eq!(h.pm().dirty_lines(), 0, "everything flushed");
        let img = h.pm().crash_image(mod_pmem::CrashPolicy::OnlyFenced);
        let mut buf = [0u8; 128];
        img.peek_bytes(a.addr(), &mut buf);
        assert_eq!(buf, [7u8; 128]);
    }

    #[test]
    fn root_slots_default_null() {
        let mut h = heap();
        for i in 0..crate::layout::N_ROOTS {
            assert!(h.read_root(i).is_null());
        }
    }

    #[test]
    #[should_panic(expected = "corrupt block header")]
    fn stray_pointer_detected() {
        let mut h = heap();
        let _ = h.alloc(64);
        h.block_len(PmPtr::from_addr(HEAP_BASE + HEADER_BYTES + 8));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn pool_exhaustion_panics() {
        let pm = Pmem::new(PmemConfig {
            capacity: 1 << 16,
            ..PmemConfig::testing()
        });
        let mut h = NvHeap::format(pm);
        for _ in 0..1000 {
            let _ = h.alloc(4096);
        }
    }

    #[test]
    #[should_panic(expected = "recovery mode")]
    fn alloc_during_recovery_panics() {
        let h = heap();
        let pm = h.into_pm();
        let mut reopened = NvHeap::open(pm);
        let _ = reopened.alloc(16);
    }

    #[test]
    fn large_alloc_beyond_classes() {
        let mut h = heap();
        let a = h.alloc(10_000);
        assert_eq!(h.block_len(a), 12288);
        h.free(a);
        let b = h.alloc(12_000);
        assert_eq!(a, b, "large free block should be reused via regions");
    }
}
