//! Worker-shard allocation state for lock-free FASE staging.
//!
//! [`crate::NvHeap::split_workers`] checks a slice of the pool out to
//! each worker thread as a fully independent `NvHeap`: the worker
//! allocates from its own arena (private bump pointer + free lists) and
//! writes through its own [`mod_pmem::Pmem`] shard handle, so the whole
//! staging hot path runs with **no shared lock**. Everything that would
//! touch shared allocator state is either
//!
//! * **local** — fresh blocks' reference counts live in the worker's own
//!   table until the FASE is handed to the commit stage;
//! * **deferred** — increments on *foreign* (already-published) blocks
//!   accumulate as deltas, and foreign frees queue up, both carried to
//!   the commit stage in a [`StagedAllocEffects`] and applied there in
//!   batch order; or
//! * **funneled through a per-shard return bin** — when the commit stage
//!   reclaims a superseded version whose blocks live in a worker arena,
//!   the block addresses go into that shard's bin (a short uncontended
//!   mutex), and the owning worker drains its bin into its free lists
//!   the next time its arena misses.
//!
//! Decrements on foreign blocks are *never* legal during staging (a
//! worker cannot know the true count, so it cannot decide to free); the
//! FASE layer defers whole-version releases to the commit stage instead.

use crate::heap::AllocStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-shard return bins: block headers freed by the commit stage on
/// behalf of a worker arena, waiting for the owner to drain them back
/// into its free lists. Indexed by worker/shard id.
pub(crate) type ShardBins = Arc<Vec<Mutex<Vec<u64>>>>;

/// Signed difference between two [`AllocStats`] snapshots, so a worker's
/// traffic since the last handoff can be folded into the global roll-up
/// (Table 3 stays exact under concurrency).
#[derive(Clone, Debug, Default)]
pub struct AllocDelta {
    allocs: u64,
    frees: u64,
    cumulative_alloc_bytes: u64,
    live_bytes: i64,
    live_blocks: i64,
}

impl AllocDelta {
    /// The traffic between `earlier` and `now`.
    pub fn between(earlier: &AllocStats, now: &AllocStats) -> AllocDelta {
        AllocDelta {
            allocs: now.allocs - earlier.allocs,
            frees: now.frees - earlier.frees,
            cumulative_alloc_bytes: now.cumulative_alloc_bytes - earlier.cumulative_alloc_bytes,
            live_bytes: now.live_bytes as i64 - earlier.live_bytes as i64,
            live_blocks: now.live_blocks as i64 - earlier.live_blocks as i64,
        }
    }

    /// Folds this delta into `stats`.
    pub fn apply_to(&self, stats: &mut AllocStats) {
        stats.allocs += self.allocs;
        stats.frees += self.frees;
        stats.cumulative_alloc_bytes += self.cumulative_alloc_bytes;
        stats.live_bytes = (stats.live_bytes as i64 + self.live_bytes).max(0) as u64;
        stats.live_blocks = (stats.live_blocks as i64 + self.live_blocks).max(0) as u64;
        stats.hwm_live_bytes = stats.hwm_live_bytes.max(stats.live_bytes);
    }
}

/// Allocator side effects of one staged FASE, in transit from a worker
/// heap to the commit stage (the PM-line side travels separately as a
/// [`mod_pmem::LineHandoff`]). Applied under the commit lock, in batch
/// order, by [`crate::NvHeap::apply_staged_effects`].
#[derive(Debug, Default)]
pub struct StagedAllocEffects {
    /// Fresh blocks whose authoritative reference counts move from the
    /// worker's table to the global table (`(payload addr, count)`).
    pub(crate) rc_transfer: Vec<(u64, u32)>,
    /// Reference-count increments on foreign (already-published) blocks.
    pub(crate) rc_deltas: Vec<(u64, i64)>,
    /// Payload addresses of foreign blocks the worker freed (rare; the
    /// authoritative free runs commit-side).
    pub(crate) foreign_frees: Vec<u64>,
    /// The worker's allocation traffic since its previous handoff.
    pub(crate) stats: AllocDelta,
}

impl StagedAllocEffects {
    /// Whether the FASE had no allocator side effects at all.
    pub fn is_empty(&self) -> bool {
        self.rc_transfer.is_empty() && self.rc_deltas.is_empty() && self.foreign_frees.is_empty()
    }
}

/// Worker-mode state carried by a checked-out `NvHeap` (see module docs).
#[derive(Debug)]
pub(crate) struct WorkerMode {
    /// This worker's shard index (its bin in [`ShardBins`]).
    pub(crate) home: usize,
    pub(crate) bins: ShardBins,
    /// Foreign-block rc increments accumulated this FASE.
    pub(crate) rc_deltas: HashMap<u64, i64>,
    /// Payload addresses allocated this FASE and still live (rollback
    /// log for conflict aborts).
    pub(crate) fase_allocs: Vec<u64>,
    /// Foreign blocks freed this FASE (deferred to the commit stage).
    pub(crate) foreign_frees: Vec<u64>,
    /// Global-stats snapshot at the last handoff (delta base).
    pub(crate) stats_mark: AllocStats,
}

/// Commit-side view of a worker split: which address ranges are checked
/// out, and the bins frees to those ranges are routed through.
#[derive(Debug)]
pub(crate) struct SplitState {
    /// Worker arena bounds `[start, end)`, indexed by shard.
    pub(crate) arenas: Vec<Option<(u64, u64)>>,
    pub(crate) bins: ShardBins,
}

impl SplitState {
    /// The worker arena containing `addr`, if still checked out.
    pub(crate) fn arena_of(&self, addr: u64) -> Option<usize> {
        self.arenas
            .iter()
            .position(|a| a.is_some_and(|(s, e)| addr >= s && addr < e))
    }
}
