//! The volatile root annex: per-root-slot words shared by every heap
//! handle of one pool.
//!
//! Hybrid ("Don't Persist All") roots keep their logical structure in
//! the volatile node cache; the persistent directory only stores the
//! spine. Readers and stagers need the *committed volatile head* of
//! such a root, and they need to agree on it across worker heaps, read
//! views and the commit-side heap — so the words live here, in one
//! `Arc` cloned into every [`crate::NvHeap`] over the pool. The typed
//! layer owns the encoding (it packs a root kind next to the address);
//! the allocator just carries the slab.
//!
//! Writes happen only under the commit path's serialization (commit
//! lock or single ownership); reads are racy relaxed loads, safe
//! because a published word is never pointed at reclaimed memory until
//! the epoch machinery says no reader can still hold it.

use crate::layout::N_ROOTS;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shared word per root slot; 0 means "no volatile head".
#[derive(Debug)]
pub struct RootAnnex {
    words: [AtomicU64; N_ROOTS],
}

impl Default for RootAnnex {
    fn default() -> RootAnnex {
        RootAnnex {
            words: [0u64; N_ROOTS].map(AtomicU64::new),
        }
    }
}

impl RootAnnex {
    /// An all-zero annex.
    pub fn new() -> RootAnnex {
        RootAnnex::default()
    }

    /// The word for root slot `i` (0 when unset).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Acquire)
    }

    /// Publishes the word for root slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&self, i: usize, word: u64) {
        self.words[i].store(word, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zero_and_round_trips() {
        let a = RootAnnex::new();
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(N_ROOTS - 1), 0);
        a.set(3, 0xdead_beef);
        assert_eq!(a.get(3), 0xdead_beef);
        a.set(3, 0);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        RootAnnex::new().get(N_ROOTS);
    }
}
