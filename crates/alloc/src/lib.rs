//! # mod-alloc — persistent heap allocator and recovery GC
//!
//! The `nvm_malloc` equivalent the MOD paper builds on (§4.2 step 1): a
//! segregated free-list allocator over the simulated PM pool, with
//!
//! * 64 persistent **root slots** — the well-known addresses from which
//!   applications find their datastructures across process lifetimes;
//! * **volatile reference counts** (§5.3) — never flushed, rebuilt on
//!   recovery from reachability;
//! * **recovery GC** — after a crash, the typed datastructure layer marks
//!   every reachable block ([`NvHeap::mark_block`]) and
//!   [`NvHeap::finish_recovery`] turns all unmarked space (including
//!   mid-FASE leaks) back into free space;
//! * allocation statistics backing Table 3 of the paper.
//!
//! ## Example
//!
//! ```
//! use mod_alloc::NvHeap;
//! use mod_pmem::{Pmem, PmemConfig};
//!
//! let mut heap = NvHeap::format(Pmem::new(PmemConfig::testing()));
//! let node = heap.alloc(32);
//! heap.write_u64(node.addr(), 42);
//! heap.flush_block(node);   // unordered clwbs
//! heap.sfence();            // one ordering point
//! assert_eq!(heap.read_u64(node.addr()), 42);
//! ```

#![warn(missing_docs)]

pub mod annex;
pub mod epoch;
pub mod heap;
pub mod layout;
pub mod read;
pub mod recovery;
pub mod worker;

pub use annex::RootAnnex;
pub use epoch::{EpochRegistry, MAX_READERS, UNPINNED};
pub use heap::{AllocStats, NvHeap};
pub use layout::{class_size, volatile_class_size, HEADER_BYTES, HEAP_BASE, N_ROOTS, POOL_MAGIC};
pub use read::HeapRead;
pub use recovery::RecoveryReport;
pub use worker::{AllocDelta, StagedAllocEffects};
