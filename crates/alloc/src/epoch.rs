//! Epoch-based reclamation for snapshot readers.
//!
//! The commit pipeline retires superseded version chains with an *epoch
//! stamp*; readers pin the epoch they are traversing in a fixed array of
//! per-reader atomic slots. A retired chain may be freed only once every
//! pinned epoch is strictly newer than the chain's retire epoch — i.e.
//! no live reader can still reach it through an older snapshot.
//!
//! The registry is deliberately tiny and allocation-free on the read
//! path: [`EpochRegistry::pin`] claims a slot with one CAS and validates
//! the published epoch with a load-store-load handshake; unpin is a
//! single store. Writers call [`EpochRegistry::min_pinned`] (a linear
//! scan of the slot array — slot count is a small constant) during the
//! commit's reclaim pass, which is already serialized on the commit
//! lock, so the scan is never on a reader's path.
//!
//! ## Memory-ordering contract
//!
//! All operations use `SeqCst`. The pin handshake
//!
//! ```text
//! loop { e = epoch.load(); slot.store(e); if epoch.load() == e { break } }
//! ```
//!
//! guarantees that once a reader settles on epoch `e`, any writer that
//! later advances the epoch to `e+1` and scans the registry *must*
//! observe the pin: the writer's advance and scan, and the reader's
//! store and re-load, are all in the single SeqCst total order. If the
//! writer's advance preceded the reader's second load, the reader would
//! have seen `e+1` and retried; so if the reader broke out at `e`, its
//! pin store precedes the writer's scan.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Sentinel meaning "slot claimed but not pinned to any epoch".
pub const UNPINNED: u64 = u64::MAX;

/// Number of reader slots. Pins outnumbering this (more simultaneously
/// live `SnapshotView`s than slots) fail fast with a panic rather than
/// silently blocking reclamation; 512 is far above any realistic reader
/// thread count.
pub const MAX_READERS: usize = 512;

#[derive(Debug)]
struct ReaderSlot {
    /// Slot ownership: claimed by one pin at a time (CAS false→true).
    claimed: AtomicBool,
    /// The epoch this reader is traversing, or [`UNPINNED`].
    pinned: AtomicU64,
}

/// A fixed-size registry of reader epoch pins plus the global epoch
/// counter readers validate against.
///
/// The epoch counter counts *published snapshots*: it starts at 0 (the
/// recovery image is snapshot 0) and [`EpochRegistry::advance`] bumps it
/// after each batch commit publishes a new snapshot. Versions superseded
/// by the commit that published epoch `k` retire at epoch `k - 1`
/// (they are exactly what a reader pinned at `k - 1` or earlier can
/// still reach) and are freed once `min_pinned() > k - 1`.
#[derive(Debug)]
pub struct EpochRegistry {
    epoch: AtomicU64,
    slots: Box<[ReaderSlot]>,
}

impl Default for EpochRegistry {
    fn default() -> Self {
        EpochRegistry::new()
    }
}

impl EpochRegistry {
    /// A registry with [`MAX_READERS`] free slots at epoch 0.
    pub fn new() -> EpochRegistry {
        let slots = (0..MAX_READERS)
            .map(|_| ReaderSlot {
                claimed: AtomicBool::new(false),
                pinned: AtomicU64::new(UNPINNED),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EpochRegistry {
            epoch: AtomicU64::new(0),
            slots,
        }
    }

    /// The current published epoch.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Publishes the next epoch and returns it. Called by the committer
    /// *after* the new snapshot pointer is in place, so a reader that
    /// observes epoch `k` can always load a snapshot stamped `>= k`.
    pub fn advance(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Claims a slot and pins it to the current epoch, returning the
    /// slot index and the pinned epoch. The returned epoch is validated:
    /// the global epoch still equalled it after the pin store, so any
    /// later `advance` + [`EpochRegistry::min_pinned`] scan observes
    /// this pin (see the module-level ordering contract).
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_READERS`] slots are claimed.
    pub fn pin(&self) -> (usize, u64) {
        let idx = self
            .slots
            .iter()
            .position(|s| {
                s.claimed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            })
            .unwrap_or_else(|| panic!("epoch registry exhausted: > {MAX_READERS} live snapshots"));
        let slot = &self.slots[idx];
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            slot.pinned.store(e, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                return (idx, e);
            }
            // A commit published a newer epoch between the two loads:
            // re-pin so the writer's reclaim scan can't have missed us
            // while we settle on a stale epoch.
        }
    }

    /// Releases a pinned slot. Idempotence is *not* required of callers:
    /// each pin is unpinned exactly once (SnapshotView's `Drop`).
    pub fn unpin(&self, idx: usize) {
        let slot = &self.slots[idx];
        slot.pinned.store(UNPINNED, Ordering::SeqCst);
        slot.claimed.store(false, Ordering::SeqCst);
    }

    /// The oldest epoch any live reader is pinned to, or [`UNPINNED`]
    /// (`u64::MAX`) when no reader is pinned. A retired chain with
    /// `retire_epoch < min_pinned()` is unreachable from every live
    /// snapshot and safe to free.
    pub fn min_pinned(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.pinned.load(Ordering::SeqCst))
            .min()
            .unwrap_or(UNPINNED)
    }

    /// Number of currently claimed slots (diagnostics / tests).
    pub fn live_pins(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.claimed.load(Ordering::SeqCst))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pin_tracks_current_epoch() {
        let r = EpochRegistry::new();
        assert_eq!(r.current(), 0);
        assert_eq!(r.min_pinned(), UNPINNED);
        let (a, ea) = r.pin();
        assert_eq!(ea, 0);
        assert_eq!(r.min_pinned(), 0);
        assert_eq!(r.advance(), 1);
        let (b, eb) = r.pin();
        assert_eq!(eb, 1);
        // Oldest pin wins.
        assert_eq!(r.min_pinned(), 0);
        r.unpin(a);
        assert_eq!(r.min_pinned(), 1);
        r.unpin(b);
        assert_eq!(r.min_pinned(), UNPINNED);
        assert_eq!(r.live_pins(), 0);
    }

    #[test]
    fn unpin_frees_the_slot_for_reuse() {
        let r = EpochRegistry::new();
        let (a, _) = r.pin();
        r.unpin(a);
        let (b, _) = r.pin();
        // First slot is reused, not leaked.
        assert_eq!(b, a);
        r.unpin(b);
    }

    #[test]
    fn min_pinned_gates_reclaim_across_threads() {
        // Writer advances epochs and checks min_pinned; readers pin,
        // observe, unpin. The invariant under test: a reader that
        // pinned epoch e is visible to every min_pinned() scan that
        // runs after an advance past e, until it unpins.
        let r = Arc::new(EpochRegistry::new());
        let rounds = if cfg!(miri) { 20 } else { 500 };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        let (idx, e) = r.pin();
                        // While pinned, no scan may report a minimum
                        // newer than our epoch.
                        assert!(r.min_pinned() <= e);
                        r.unpin(idx);
                    }
                })
            })
            .collect();
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    let before = r.current();
                    let now = r.advance();
                    assert_eq!(now, before + 1);
                    // Anything retired at `now - 1` is freeable only
                    // if min_pinned() > now - 1; the scan must never
                    // see garbage, just a conservative minimum.
                    let m = r.min_pinned();
                    assert!(m == UNPINNED || m <= r.current());
                }
            })
        };
        for h in readers {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(r.min_pinned(), UNPINNED);
    }

    #[test]
    fn pin_revalidates_across_concurrent_advance() {
        // Hammer pin/advance interleavings: the returned epoch must
        // never be older than the epoch current *before* the pin began.
        let r = Arc::new(EpochRegistry::new());
        let rounds = if cfg!(miri) { 20 } else { 2000 };
        let adv = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    r.advance();
                }
            })
        };
        let pinner = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    let floor = r.current();
                    let (idx, e) = r.pin();
                    assert!(e >= floor);
                    r.unpin(idx);
                }
            })
        };
        adv.join().unwrap();
        pinner.join().unwrap();
    }
}
