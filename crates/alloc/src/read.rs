//! Unified read access for charged and peek paths.
//!
//! The datastructure layer traverses PM in two modes: the *charged* mode
//! (`&mut NvHeap`) routes every load through the simulated cache and time
//! model — what benchmarks measure — while the *peek* mode (`&NvHeap`)
//! reads the pool contents directly, the way a read-only lookup on real
//! hardware needs no exclusive access and no instrumentation. [`HeapRead`]
//! lets one traversal implementation serve both, so read-only accessors
//! can be offered on `&NvHeap` without duplicating every walk.

use crate::heap::NvHeap;

/// A read handle over the persistent heap: either charged (through the
/// cache/time model, requires `&mut NvHeap`) or peek (instrumentation-free
/// `&NvHeap`).
#[derive(Debug)]
pub enum HeapRead<'a> {
    /// Reads through the cache model, charging simulated time.
    Charged(&'a mut NvHeap),
    /// Reads the pool contents directly, charging nothing.
    Peek(&'a NvHeap),
}

impl HeapRead<'_> {
    /// Reads a `u64` at `addr`.
    pub fn u64(&mut self, addr: u64) -> u64 {
        match self {
            HeapRead::Charged(h) => h.read_u64(addr),
            HeapRead::Peek(h) => h.peek_u64(addr),
        }
    }

    /// Reads a `u32` at `addr`.
    pub fn u32(&mut self, addr: u64) -> u32 {
        match self {
            HeapRead::Charged(h) => h.read_u32(addr),
            HeapRead::Peek(h) => h.peek_u32(addr),
        }
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn vec(&mut self, addr: u64, len: u64) -> Vec<u8> {
        match self {
            HeapRead::Charged(h) => h.read_vec(addr, len),
            HeapRead::Peek(h) => h.peek_vec(addr, len),
        }
    }
}

impl<'a> From<&'a mut NvHeap> for HeapRead<'a> {
    fn from(h: &'a mut NvHeap) -> HeapRead<'a> {
        HeapRead::Charged(h)
    }
}

impl<'a> From<&'a NvHeap> for HeapRead<'a> {
    fn from(h: &'a NvHeap) -> HeapRead<'a> {
        HeapRead::Peek(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{Pmem, PmemConfig};

    #[test]
    fn charged_and_peek_agree_but_only_charged_counts() {
        let mut h = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let p = h.alloc(32);
        h.write_u64(p.addr(), 0xFEED);
        h.write_u32(p.addr() + 8, 77);
        let reads_before = h.pm().stats().reads;
        assert_eq!(HeapRead::from(&h).u64(p.addr()), 0xFEED);
        assert_eq!(HeapRead::from(&h).u32(p.addr() + 8), 77);
        assert_eq!(HeapRead::from(&h).vec(p.addr(), 8), 0xFEEDu64.to_le_bytes());
        assert_eq!(h.pm().stats().reads, reads_before, "peek is free");
        assert_eq!(HeapRead::from(&mut h).u64(p.addr()), 0xFEED);
        assert!(h.pm().stats().reads > reads_before, "charged counts");
    }
}
