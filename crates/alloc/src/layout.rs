//! Pool layout and allocation size classes.
//!
//! The pool is laid out as:
//!
//! ```text
//! [0,   64)   pool header: magic, capacity
//! [64,  576)  64 persistent root slots (8 bytes each)
//! [1024, ..)  heap blocks: 16-byte header + payload, 16-byte aligned
//! ```
//!
//! Size classes mirror nvm_malloc's segregated bins: small classes grow
//! roughly geometrically, large requests round up to 4 KiB multiples.

/// Pool magic number ("MODPOOL1").
pub const POOL_MAGIC: u64 = 0x4D4F_4450_4F4F_4C31;

/// Number of persistent root slots.
pub const N_ROOTS: usize = 64;

/// Byte offset of root slot `i`.
#[inline]
pub fn root_slot_offset(i: usize) -> u64 {
    assert!(i < N_ROOTS, "root slot {i} out of range (max {N_ROOTS})");
    64 + (i as u64) * 8
}

/// First byte of the heap region.
pub const HEAP_BASE: u64 = 1024;

/// Bytes of block header preceding each payload.
pub const HEADER_BYTES: u64 = 16;

/// Magic mixed into block headers for integrity checking.
pub const BLOCK_MAGIC: u64 = 0x4D4F_445F_424C_4B00;

/// Segregated size classes (payload bytes). Requests above the last class
/// round up to 4 KiB multiples.
pub const SIZE_CLASSES: [u64; 17] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 8192,
];

/// Smallest granule for recovered free-space regions (header + minimum
/// payload).
pub const MIN_BLOCK: u64 = HEADER_BYTES + SIZE_CLASSES[0];

/// The payload size actually allocated for a request of `len` bytes.
///
/// # Panics
///
/// Panics if `len == 0` (zero-sized persistent allocations are a logic
/// error — they would produce aliased block addresses).
pub fn class_size(len: u64) -> u64 {
    assert!(len > 0, "zero-sized persistent allocation");
    for &c in &SIZE_CLASSES {
        if len <= c {
            return c;
        }
    }
    len.div_ceil(4096) * 4096
}

/// Index into the free-list table for an exact class size, if it is one of
/// the segregated classes.
pub fn class_index(class: u64) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c == class)
}

/// The payload size allocated for a *volatile node-cache* request of
/// `len` bytes: header + payload rounded up to whole 64-byte cachelines
/// (classes 48, 112, 176, …). Heap blocks are only 16-byte aligned, so a
/// cacheline can straddle two blocks; a volatile block must own its
/// lines exclusively or marking them volatile would swallow a
/// neighboring persistent block's stores.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn volatile_class_size(len: u64) -> u64 {
    assert!(len > 0, "zero-sized volatile allocation");
    (HEADER_BYTES + len).div_ceil(64) * 64 - HEADER_BYTES
}

/// Whether a block at header address `hdr` with payload class `class`
/// has the exclusive-cacheline footprint of a volatile node-cache block
/// (see [`volatile_class_size`]). Shape is geometry, not state: freed
/// volatile blocks keep their shape and are recycled for the next
/// volatile allocation.
#[inline]
pub fn is_volatile_shape(hdr: u64, class: u64) -> bool {
    hdr % 64 == 0 && (HEADER_BYTES + class) % 64 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up() {
        assert_eq!(class_size(1), 16);
        assert_eq!(class_size(16), 16);
        assert_eq!(class_size(17), 32);
        assert_eq!(class_size(100), 128);
        assert_eq!(class_size(4096), 4096);
        assert_eq!(class_size(8192), 8192);
        assert_eq!(class_size(8193), 12288);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        class_size(0);
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, &c) in SIZE_CLASSES.iter().enumerate() {
            assert_eq!(class_index(c), Some(i));
        }
        assert_eq!(class_index(20), None);
    }

    #[test]
    fn root_slots_fit_below_heap() {
        assert!(root_slot_offset(N_ROOTS - 1) + 8 <= HEAP_BASE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn root_slot_bounds_checked() {
        root_slot_offset(N_ROOTS);
    }

    #[test]
    fn volatile_classes_cover_whole_lines() {
        for len in [1u64, 16, 47, 48, 49, 100, 1000, 4096] {
            let c = volatile_class_size(len);
            assert!(c >= len);
            assert_eq!((HEADER_BYTES + c) % 64, 0, "len {len} -> class {c}");
            assert!(is_volatile_shape(64, c));
            assert!(
                !is_volatile_shape(16, c),
                "unaligned start is not the shape"
            );
        }
        assert_eq!(volatile_class_size(1), 48);
        assert_eq!(volatile_class_size(48), 48);
        assert_eq!(volatile_class_size(49), 112);
    }

    #[test]
    fn classes_are_16_aligned_and_increasing() {
        let mut prev = 0;
        for &c in &SIZE_CLASSES {
            assert_eq!(c % 16, 0);
            assert!(c > prev);
            prev = c;
        }
    }
}
