//! Post-crash recovery: reachability marking, refcount reconstruction and
//! free-space rebuild (paper §5.3).
//!
//! The paper's reclamation scheme deliberately keeps reference counts and
//! free lists volatile; after a crash the recovery code (1) walks every
//! datastructure from its persistent root, marking reachable blocks and
//! counting references, and (2) treats everything unmarked as free —
//! including leaks from FASEs interrupted mid-update, whose shadow nodes
//! were never committed. The walk is driven by the typed datastructure
//! layer (which knows where the child pointers are); this module provides
//! the mark/sweep machinery.

use crate::heap::NvHeap;
use crate::layout::{BLOCK_MAGIC, HEADER_BYTES, HEAP_BASE, MIN_BLOCK, SIZE_CLASSES};
use mod_pmem::PmPtr;
use std::collections::{BTreeMap, HashMap};

/// Bookkeeping for an in-progress recovery.
#[derive(Debug, Default)]
pub struct MarkState {
    /// payload addr → payload class size.
    marked: HashMap<u64, u64>,
    /// payload addr → number of references found.
    refs: HashMap<u64, u32>,
}

/// Outcome of a completed recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks found reachable.
    pub live_blocks: u64,
    /// Payload bytes found reachable.
    pub live_bytes: u64,
    /// Bytes of free space (gaps, incl. leaked blocks) returned to the
    /// allocator.
    pub reclaimed_bytes: u64,
}

impl NvHeap {
    /// Marks the block at `ptr` as reachable, incrementing its rebuilt
    /// reference count. Returns `true` the first time the block is seen —
    /// the caller should then recurse into its children.
    ///
    /// # Panics
    ///
    /// Panics outside recovery mode, on a null pointer, or if the block
    /// header fails its integrity check.
    pub fn mark_block(&mut self, ptr: PmPtr) -> bool {
        assert!(!ptr.is_null(), "marking null pointer");
        assert!(self.mark.is_some(), "mark_block outside recovery");
        let hdr = ptr.addr() - HEADER_BYTES;
        // Header reads are charged: the paper includes GC time in results.
        let class = self.pm_mut().read_u64(hdr);
        let magic = self.pm_mut().read_u64(hdr + 8);
        assert_eq!(
            magic,
            BLOCK_MAGIC ^ class,
            "corrupt block header at {hdr:#x} during recovery"
        );
        let mark = self.mark.as_mut().unwrap();
        *mark.refs.entry(ptr.addr()).or_insert(0) += 1;
        mark.marked.insert(ptr.addr(), class).is_none()
    }

    /// Completes recovery: rebuilds the bump pointer, free regions and
    /// refcount table from the mark results, and re-enables allocation.
    ///
    /// # Panics
    ///
    /// Panics outside recovery mode.
    pub fn finish_recovery(&mut self) -> RecoveryReport {
        let mark = self
            .mark
            .take()
            .expect("finish_recovery outside recovery mode");
        let mut blocks: Vec<(u64, u64)> = mark
            .marked
            .iter()
            .map(|(&payload, &class)| (payload - HEADER_BYTES, HEADER_BYTES + class))
            .collect();
        blocks.sort_unstable();
        let mut regions: BTreeMap<u64, u64> = BTreeMap::new();
        let mut cursor = HEAP_BASE;
        let mut reclaimed = 0u64;
        for &(start, len) in &blocks {
            assert!(start >= cursor, "overlapping live blocks at {start:#x}");
            if start - cursor >= MIN_BLOCK {
                regions.insert(cursor, start - cursor);
                reclaimed += start - cursor;
            }
            cursor = start + len;
        }
        let bump = cursor;
        let live_blocks = blocks.len() as u64;
        let live_bytes: u64 = mark.marked.values().sum();
        self.rebuild_volatile(
            vec![Vec::new(); SIZE_CLASSES.len()],
            regions,
            bump,
            mark.refs,
        );
        let stats = self.stats_mut();
        stats.live_bytes = live_bytes;
        stats.live_blocks = live_blocks;
        stats.hwm_live_bytes = stats.hwm_live_bytes.max(live_bytes);
        RecoveryReport {
            live_blocks,
            live_bytes,
            reclaimed_bytes: reclaimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mod_pmem::{CrashPolicy, Pmem, PmemConfig};

    /// Builds a heap with a two-node persistent "list" reachable from
    /// root 0 and one leaked (unreachable) block, then crashes it.
    fn crashed_heap_with_leak() -> (Pmem, PmPtr, PmPtr) {
        let mut h = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let n1 = h.alloc(16);
        let n2 = h.alloc(16);
        // n1.next = n2
        h.write_u64(n1.addr(), n2.addr());
        h.write_u64(n2.addr(), 0);
        h.flush_block(n1);
        h.flush_block(n2);
        h.sfence();
        // Publish n1 in root slot 0, flushed and fenced.
        let slot = h.root_slot_addr(0);
        h.write_u64(slot, n1.addr());
        h.clwb(slot);
        h.sfence();
        // Leak: allocated, flushed, but never linked anywhere.
        let leak = h.alloc(64);
        h.write_u64(leak.addr(), 0xDEAD);
        h.flush_block(leak);
        h.sfence();
        (h.into_pm(), n1, n2)
    }

    #[test]
    fn recovery_marks_live_and_reclaims_leaks() {
        let (pm, n1, n2) = crashed_heap_with_leak();
        let crashed = pm.crash_image(CrashPolicy::OnlyFenced);
        let mut h = NvHeap::open(crashed);
        let root = h.read_root(0);
        assert_eq!(root, n1);
        // Walk the list, marking.
        let mut cur = root;
        while !cur.is_null() {
            assert!(h.mark_block(cur));
            cur = PmPtr::from_addr(h.read_u64(cur.addr()));
        }
        let report = h.finish_recovery();
        assert_eq!(report.live_blocks, 2);
        assert_eq!(report.live_bytes, 32);
        // The leak sat at the heap tail, so it is reclaimed by the bump
        // pointer rather than a gap region: the next allocation of its
        // size lands exactly where the leaked block was.
        let reused = h.alloc(64);
        assert_eq!(
            reused.addr(),
            HEAP_BASE + 2 * (HEADER_BYTES + 16) + HEADER_BYTES
        );
        // Live data intact.
        assert_eq!(h.read_u64(n1.addr()), n2.addr());
        // Refcounts rebuilt.
        assert_eq!(h.rc_get(n1), 1);
        assert_eq!(h.rc_get(n2), 1);
        // And the reclaimed space is allocatable again.
        let a = h.alloc(48);
        assert!(!a.is_null());
    }

    #[test]
    fn shared_blocks_get_ref_counts_from_reachability() {
        let mut h = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let shared = h.alloc(16);
        let p1 = h.alloc(16);
        let p2 = h.alloc(16);
        h.write_u64(p1.addr(), shared.addr());
        h.write_u64(p2.addr(), shared.addr());
        for b in [shared, p1, p2] {
            h.flush_block(b);
        }
        h.sfence();
        let (s0, s1) = (h.root_slot_addr(0), h.root_slot_addr(1));
        h.write_u64(s0, p1.addr());
        h.write_u64(s1, p2.addr());
        h.clwb(s0);
        h.clwb(s1);
        h.sfence();
        let crashed = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h = NvHeap::open(crashed);
        for slot in 0..2 {
            let parent = h.read_root(slot);
            assert!(h.mark_block(parent));
            let child = PmPtr::from_addr(h.read_u64(parent.addr()));
            h.mark_block(child); // second call returns false, still counts
        }
        h.finish_recovery();
        assert_eq!(h.rc_get(shared), 2, "two parents found by reachability");
    }

    #[test]
    fn empty_heap_recovery() {
        let h = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let crashed = h.into_pm().crash_image(CrashPolicy::OnlyFenced);
        let mut h = NvHeap::open(crashed);
        let report = h.finish_recovery();
        assert_eq!(report.live_blocks, 0);
        let a = h.alloc(16);
        assert_eq!(a.addr(), HEAP_BASE + HEADER_BYTES);
    }

    #[test]
    fn alloc_after_recovery_fills_gaps_first() {
        let (pm, _, _) = crashed_heap_with_leak();
        let crashed = pm.crash_image(CrashPolicy::OnlyFenced);
        let mut h = NvHeap::open(crashed);
        let mut cur = h.read_root(0);
        while !cur.is_null() {
            h.mark_block(cur);
            cur = PmPtr::from_addr(h.read_u64(cur.addr()));
        }
        let bump_before = h.finish_recovery();
        // The leaked 64B block's space should satisfy this allocation
        // without growing the pool.
        let a = h.alloc(64);
        let _ = bump_before;
        assert!(
            a.addr() < HEAP_BASE + 1024,
            "allocation should land in the reclaimed gap, got {a}"
        );
    }

    #[test]
    #[should_panic(expected = "outside recovery")]
    fn mark_outside_recovery_panics() {
        let mut h = NvHeap::format(Pmem::new(PmemConfig::testing()));
        let a = h.alloc(16);
        h.mark_block(a);
    }
}
